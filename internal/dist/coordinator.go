package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/obs"
)

// CoordinatorOptions configures a Coordinator. The zero value works for
// in-process use: 8-config shards, 2-minute leases, wall clock, no
// self-build.
type CoordinatorOptions struct {
	// Store is the shared content-addressed bank cache; assembled banks are
	// written through it and GET /v1/banks/{key} serves from it (nil = no
	// persistence, no peer serving).
	Store *core.BankStore
	// ShardConfigs is the config-index width of one shard job (default 8).
	// Smaller shards spread better across a fleet; larger ones amortize
	// lease round trips.
	ShardConfigs int
	// LeaseTTL is how long a worker owns a leased shard before the
	// coordinator re-queues it (default 2m). It should comfortably exceed
	// one shard's training time.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one shard may be leased (default
	// 5). A shard that keeps expiring or being rejected — a deterministic
	// training failure, or a version-skewed worker uploading garbage —
	// fails its whole build instead of re-queueing forever, so
	// BuildSharded reports an error exactly like the local BuildBank it
	// replaces rather than blocking every waiter.
	MaxAttempts int
	// StallTimeout fails a build that has seen no progress — no lease
	// granted, no shard accepted — for this long (default 15m; negative =
	// never). It is the backstop for a fleet that died entirely: with no
	// worker left to touch the queue, lease expiry and MaxAttempts alone
	// can never fire, and every BuildSharded waiter would hang forever. A
	// background sweeper enforces it (and requeues expired leases) even
	// when no request arrives. Like LeaseTTL, set it comfortably above the
	// worst-case single-shard training time: a shard still in flight past
	// the timeout is indistinguishable from a dead fleet.
	StallTimeout time.Duration
	// SelfBuild is the number of in-process worker goroutines the
	// coordinator runs against its own queue (0 = none). With self-build
	// on, a cluster degrades gracefully to a local build when no external
	// worker ever connects.
	SelfBuild int
	// Workers bounds per-shard training parallelism for self-built shards
	// (0 = GOMAXPROCS).
	Workers int
	// Clock is the time source (default time.Now; tests inject a fake to
	// drive lease expiry deterministically).
	Clock func() time.Time
}

// CoordinatorStats is a snapshot of the coordinator's operational counters
// (GET /v1/work/stats, and noisyevald's /debug/vars in cluster mode).
type CoordinatorStats struct {
	BuildsStarted     int64 `json:"builds_started"`
	BuildsCompleted   int64 `json:"builds_completed"`
	BuildsFailed      int64 `json:"builds_failed"`
	ShardsPending     int64 `json:"shards_pending"`
	ShardsLeased      int64 `json:"shards_leased"`
	ShardsCompleted   int64 `json:"shards_completed"`
	ShardsRequeued    int64 `json:"shards_requeued"`
	ShardsDuplicate   int64 `json:"shards_duplicate"`
	ShardsRejected    int64 `json:"shards_rejected"`
	ShardsSelfBuilt   int64 `json:"shards_self_built"`
	BankFetches       int64 `json:"bank_fetches"`
	PopulationFetches int64 `json:"population_fetches"`
	WorkersSeen       int64 `json:"workers_seen"`
}

type jobState int

const (
	jobPending jobState = iota
	jobLeased
	jobDone
)

// job is one shard of one build moving through pending → leased → done
// (leases that expire fall back to pending).
type job struct {
	id       string
	build    *build
	lo, hi   int
	state    jobState
	expiry   time.Time // lease deadline while leased
	worker   string    // current/last lessee
	attempts int       // lease count
}

// build is one in-flight sharded bank construction.
type build struct {
	key     string
	popKey  string
	pop     *data.Population
	plan    *core.BuildPlan
	optsGob []byte
	seed    uint64

	// trace is the obs trace of the request that started this build (nil
	// when untraced). Worker and self-build shard spans attach to it.
	trace *obs.Trace

	pending    int // jobs not yet done
	assembling bool
	shards     []*core.BankShard
	// lastProgress is the coordinator-clock time of the build's most
	// recent lease or accepted shard (creation time initially); the
	// sweeper's stall detection measures from it.
	lastProgress time.Time

	done chan struct{} // closed when bank/err is set
	bank *core.Bank
	err  error
}

// Coordinator owns the shard queue of a cluster: it splits bank builds into
// content-addressed shard jobs, leases them to workers, re-queues expired
// leases, deduplicates completions, reassembles finished builds, and writes
// the result through the shared BankStore. All methods are safe for
// concurrent use.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	builds  map[string]*build // by bank key (in-flight only)
	jobs    map[string]*job   // every live job by id
	queue   []*job            // pending jobs, FIFO
	pops    map[string]*popRecord
	workers map[string]bool // distinct worker ids seen

	wake     chan struct{} // nudges self-build workers
	selfStop chan struct{}
	selfWG   sync.WaitGroup

	buildsStarted, buildsCompleted, buildsFailed atomic.Int64
	completed, requeued, duplicates, rejected    atomic.Int64
	selfBuilt, bankFetches, popFetches           atomic.Int64
}

// popRecord caches one population and its lazily rendered wire bytes.
type popRecord struct {
	pop *data.Population

	once  sync.Once
	bytes []byte
	err   error
}

func (p *popRecord) wire() ([]byte, error) {
	p.once.Do(func() { p.bytes, p.err = EncodePopulation(p.pop) })
	return p.bytes, p.err
}

// NewCoordinator starts a coordinator (self-build goroutines included when
// configured). Close releases them.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.ShardConfigs <= 0 {
		opts.ShardConfigs = 8
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.StallTimeout == 0 {
		opts.StallTimeout = 15 * time.Minute
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Coordinator{
		opts:     opts,
		builds:   map[string]*build{},
		jobs:     map[string]*job{},
		pops:     map[string]*popRecord{},
		workers:  map[string]bool{},
		wake:     make(chan struct{}, 1),
		selfStop: make(chan struct{}),
	}
	for i := 0; i < opts.SelfBuild; i++ {
		c.selfWG.Add(1)
		go c.selfBuildLoop()
	}
	c.selfWG.Add(1)
	go c.sweeperLoop()
	return c
}

// sweeperLoop periodically requeues expired leases and fails stalled builds
// even when no worker request ever touches the queue again (the
// whole-fleet-died case).
func (c *Coordinator) sweeperLoop() {
	defer c.selfWG.Done()
	interval := c.opts.LeaseTTL / 4
	if interval > 10*time.Second {
		interval = 10 * time.Second
	}
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.selfStop:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep requeues expired leases and fails builds stalled past StallTimeout.
// The background sweeper calls it periodically; tests drive it directly
// against the injectable clock.
func (c *Coordinator) Sweep() {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requeueExpiredLocked(now)
	if c.opts.StallTimeout < 0 {
		return
	}
	for _, b := range c.builds {
		if now.Sub(b.lastProgress) > c.opts.StallTimeout {
			c.failBuildLocked(b, fmt.Errorf(
				"dist: build %s stalled: no lease or shard for %s (workers gone? start noisyworker processes or enable self-build)",
				b.key, c.opts.StallTimeout))
		}
	}
}

// Close stops the self-build goroutines. In-flight builds keep their state;
// external workers can still complete them.
func (c *Coordinator) Close() {
	c.mu.Lock()
	select {
	case <-c.selfStop:
	default:
		close(c.selfStop)
	}
	c.mu.Unlock()
	c.selfWG.Wait()
}

// Store returns the coordinator's bank store (nil when none).
func (c *Coordinator) Store() *core.BankStore { return c.opts.Store }

// BuildBank implements core.BankBuilder: a sharded build through the fleet.
// cached reports a store hit (no shards were scheduled).
func (c *Coordinator) BuildBank(ctx context.Context, pop *data.Population, opts core.BuildOptions, seed uint64) (*core.Bank, bool, error) {
	tr := obs.TraceFrom(ctx)
	key := core.BankKeyForPopulation(pop, opts, seed)
	start := time.Now()
	if b, err := c.opts.Store.Get(key); err == nil && b != nil {
		tr.AddSpan("bank.lookup", start, time.Since(start),
			"key", core.ShortKey(key), "tier", "store", "hit", "true")
		return b, true, nil
	}
	sp := tr.StartSpan("bank.build", "key", core.ShortKey(key), "source", "fleet")
	b, err := c.BuildSharded(ctx, pop, opts, seed)
	sp.End()
	return b, false, err
}

// BuildSharded splits the build into shard jobs, waits for the fleet (and
// any self-build goroutines) to complete them, reassembles, verifies, writes
// the bank through the store, and returns it. Concurrent calls for one
// content address coalesce onto a single build. The ctx's obs.Trace (when
// present) becomes the build's trace: its ID travels in every leased Job so
// worker shard.train spans land on the same timeline; coalesced waiters
// join the first caller's build and record no spans of their own.
func (c *Coordinator) BuildSharded(ctx context.Context, pop *data.Population, opts core.BuildOptions, seed uint64) (*core.Bank, error) {
	key := core.BankKeyForPopulation(pop, opts, seed)

	// Coalesce before any expensive derivation: concurrent requests for
	// one content address are the serving layer's normal cold pattern, and
	// only the caller that registers the build should pay for the plan
	// (repartition pools + config sampling).
	c.mu.Lock()
	if b, ok := c.builds[key]; ok {
		c.mu.Unlock()
		<-b.done
		return b.bank, b.err
	}
	b := &build{
		key:          key,
		pop:          pop,
		seed:         seed,
		trace:        obs.TraceFrom(ctx),
		done:         make(chan struct{}),
		lastProgress: c.opts.Clock(),
	}
	c.builds[key] = b
	c.buildsStarted.Add(1)
	c.mu.Unlock()

	// Derive the skeleton outside the lock (it repartitions the validation
	// pool); coalesced waiters block on b.done, not on the mutex.
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err == nil {
		b.popKey = core.PopulationFingerprint(pop)
		// Workers re-plan from the same inputs; ship options with
		// parallelism zeroed (each worker picks its own, content never
		// depends on it).
		wireOpts := opts
		wireOpts.Workers = 0
		b.optsGob, err = encodeOptions(wireOpts)
	}
	if err != nil {
		c.mu.Lock()
		if !b.assembling { // the sweeper may have failed it already
			b.assembling = true // invalid inputs: no jobs exist to tear down
			b.err = err
			delete(c.builds, b.key)
			c.buildsFailed.Add(1)
			c.mu.Unlock()
			close(b.done)
			return nil, err
		}
		c.mu.Unlock()
		return nil, b.err
	}

	c.mu.Lock()
	if b.assembling { // failed (stall sweep) while planning: don't enqueue
		c.mu.Unlock()
		<-b.done
		return b.bank, b.err
	}
	b.plan = plan
	if _, ok := c.pops[b.popKey]; !ok {
		c.pops[b.popKey] = &popRecord{pop: pop}
	}
	ranges := core.ShardRanges(plan.NumConfigs(), c.opts.ShardConfigs)
	b.pending = len(ranges)
	for _, r := range ranges {
		j := &job{id: jobID(key, r[0], r[1]), build: b, lo: r[0], hi: r[1]}
		c.jobs[j.id] = j
		c.queue = append(c.queue, j)
	}
	c.mu.Unlock()

	c.nudge()
	<-b.done
	return b.bank, b.err
}

// nudge wakes one idle self-build goroutine.
func (c *Coordinator) nudge() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// requeueExpiredLocked returns expired leases to the pending queue. Called
// under c.mu from every lease/complete entry point, so expiry needs no
// background timer — progress on the queue implies progress on expiry.
func (c *Coordinator) requeueExpiredLocked(now time.Time) {
	for _, j := range c.jobs {
		if j.state == jobLeased && now.After(j.expiry) {
			j.state = jobPending
			c.queue = append(c.queue, j)
			c.requeued.Add(1)
		}
	}
}

// failBuildLocked tears down a build that can no longer succeed: every
// waiter on BuildSharded receives err, the build's jobs become stale, and
// still-queued entries are skipped by Lease. Idempotent.
func (c *Coordinator) failBuildLocked(b *build, err error) {
	if b.assembling {
		return // finishBuild (or an earlier failure) already owns the exit
	}
	b.assembling = true
	b.err = err
	for id, j := range c.jobs {
		if j.build == b {
			j.state = jobDone // queue pops skip non-pending entries
			delete(c.jobs, id)
		}
	}
	delete(c.builds, b.key)
	c.dropPopLocked(b.popKey)
	c.buildsFailed.Add(1)
	close(b.done)
}

// dropPopLocked releases a population record once no in-flight build
// references it, so a long-running coordinator does not retain every
// population (plus its memoized wire bytes) forever.
func (c *Coordinator) dropPopLocked(popKey string) {
	for _, other := range c.builds {
		if other.popKey == popKey {
			return
		}
	}
	delete(c.pops, popKey)
}

// Lease hands the oldest pending shard to worker, or reports none available.
func (c *Coordinator) Lease(worker string) (Job, bool) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker != "" {
		c.workers[worker] = true
	}
	c.requeueExpiredLocked(now)
	for len(c.queue) > 0 {
		j := c.queue[0]
		c.queue = c.queue[1:]
		if j.state != jobPending { // completed while queued (late shard)
			continue
		}
		if j.attempts >= c.opts.MaxAttempts {
			// Every prior lease expired or was rejected: the shard (or the
			// fleet) is broken in a way retrying won't fix. Fail the build
			// so its waiters get an error instead of an eternal queue.
			c.failBuildLocked(j.build, fmt.Errorf(
				"dist: shard %s failed %d lease attempts (expired or rejected); giving up on build %s",
				j.id, j.attempts, j.build.key))
			continue
		}
		j.state = jobLeased
		j.expiry = now.Add(c.opts.LeaseTTL)
		j.worker = worker
		j.attempts++
		j.build.lastProgress = now
		return Job{
			ID:              j.id,
			BankKey:         j.build.key,
			PopKey:          j.build.popKey,
			Lo:              j.lo,
			Hi:              j.hi,
			Seed:            j.build.seed,
			OptsGob:         j.build.optsGob,
			Attempt:         j.attempts - 1,
			LeaseTTLSeconds: c.opts.LeaseTTL.Seconds(),
			TraceID:         j.build.trace.ID(),
		}, true
	}
	return Job{}, false
}

// Complete records one finished shard. It is idempotent: a duplicate
// completion (the job already done) or a stale one (the build no longer
// exists) is acknowledged without effect, so workers whose lease expired —
// or who raced a re-lease — can upload safely. A shard whose shape does not
// match the job is rejected and the job re-queued.
//
// spans are worker-side timing (shard.train, decoded from the completion's
// X-Trace-Spans header, or the self-build loop's own measurement); they
// attach to the build's trace only when the shard is accepted — duplicate,
// stale, and rejected work never pollutes the timeline.
func (c *Coordinator) Complete(id, worker string, sh *core.BankShard, spans ...obs.Span) (status string, err error) {
	now := c.opts.Clock()
	c.mu.Lock()
	if worker != "" {
		c.workers[worker] = true
	}
	c.requeueExpiredLocked(now)
	j, ok := c.jobs[id]
	if !ok {
		c.duplicates.Add(1)
		c.mu.Unlock()
		return "stale", nil
	}
	if j.state == jobDone {
		c.duplicates.Add(1)
		c.mu.Unlock()
		return "duplicate", nil
	}
	b := j.build
	if sh.Lo != j.lo || sh.Hi != j.hi {
		err = fmt.Errorf("dist: shard range [%d, %d) does not match job %s", sh.Lo, sh.Hi, id)
	} else if verr := sh.Validate(b.plan); verr != nil {
		err = verr
	}
	if err != nil {
		c.rejected.Add(1)
		if j.state == jobLeased { // give the shard to someone else
			j.state = jobPending
			c.queue = append(c.queue, j)
			c.requeued.Add(1)
		}
		c.mu.Unlock()
		c.nudge()
		return "", err
	}
	j.state = jobDone
	b.shards = append(b.shards, sh)
	b.pending--
	b.lastProgress = now
	c.completed.Add(1)
	assemble := b.pending == 0 && !b.assembling
	if assemble {
		b.assembling = true
	}
	c.mu.Unlock()

	b.trace.Append(spans...)
	if assemble {
		c.finishBuild(b)
	}
	return "ok", nil
}

// finishBuild reassembles a fully sharded build, verifies it, persists it,
// and releases every waiter. Runs outside c.mu (assembly touches every error
// vector; leases must not stall behind it).
func (c *Coordinator) finishBuild(b *build) {
	bank, err := core.AssembleBank(b.plan, b.shards)
	if err == nil && c.opts.Store != nil {
		// Persisting is best-effort, exactly like BuildBankCached: a full
		// disk must not fail a finished build.
		c.opts.Store.Put(b.key, bank)
	}

	c.mu.Lock()
	b.bank, b.err = bank, err
	delete(c.builds, b.key)
	for _, r := range core.ShardRanges(b.plan.NumConfigs(), c.opts.ShardConfigs) {
		delete(c.jobs, jobID(b.key, r[0], r[1]))
	}
	c.dropPopLocked(b.popKey)
	if err != nil {
		c.buildsFailed.Add(1)
	} else {
		c.buildsCompleted.Add(1)
	}
	c.mu.Unlock()
	close(b.done)
}

// selfBuildLoop is one in-process worker: it leases from the local queue and
// trains shards directly against the build's plan (no encode/decode round
// trip).
func (c *Coordinator) selfBuildLoop() {
	defer c.selfWG.Done()
	for {
		j, ok := c.Lease("__self__")
		if !ok {
			select {
			case <-c.selfStop:
				return
			case <-c.wake:
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		c.mu.Lock()
		jb, live := c.jobs[j.ID]
		var plan *core.BuildPlan
		if live {
			plan = jb.build.plan
		}
		c.mu.Unlock()
		if !live {
			continue
		}
		start := time.Now()
		sh, err := plan.TrainRange(j.Lo, j.Hi, c.opts.Workers)
		if err != nil {
			// A local training error is deterministic (bad config, bad
			// options) — exactly what local BuildBank would return. Fail
			// the build now instead of letting the lease cycle burn
			// through MaxAttempts on an unwinnable shard.
			c.mu.Lock()
			if jb, live := c.jobs[j.ID]; live {
				c.failBuildLocked(jb.build, fmt.Errorf("dist: shard %s: %w", j.ID, err))
			}
			c.mu.Unlock()
			continue
		}
		c.selfBuilt.Add(1)
		c.Complete(j.ID, "__self__", sh, obs.Span{
			Name: "shard.train", Start: start, Dur: time.Since(start),
			Attrs: []string{"worker", "__self__", "range", shardRange(j.Lo, j.Hi)},
		})
	}
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	var pending, leased int64
	for _, j := range c.jobs {
		switch j.state {
		case jobPending:
			pending++
		case jobLeased:
			leased++
		}
	}
	workers := int64(len(c.workers))
	c.mu.Unlock()
	return CoordinatorStats{
		BuildsStarted:     c.buildsStarted.Load(),
		BuildsCompleted:   c.buildsCompleted.Load(),
		BuildsFailed:      c.buildsFailed.Load(),
		ShardsPending:     pending,
		ShardsLeased:      leased,
		ShardsCompleted:   c.completed.Load(),
		ShardsRequeued:    c.requeued.Load(),
		ShardsDuplicate:   c.duplicates.Load(),
		ShardsRejected:    c.rejected.Load(),
		ShardsSelfBuilt:   c.selfBuilt.Load(),
		BankFetches:       c.bankFetches.Load(),
		PopulationFetches: c.popFetches.Load(),
		WorkersSeen:       workers,
	}
}

// Register mounts the coordinator's HTTP endpoints onto mux (noisyevald does
// this behind -cluster; cmd/figures behind -cluster-addr).
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/work/lease", c.handleLease)
	mux.HandleFunc("POST /v1/work/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/work/populations/{key}", c.handlePopulation)
	mux.HandleFunc("GET /v1/work/stats", c.handleStats)
	mux.HandleFunc("GET /v1/banks/{key}", c.handleBank)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "decode lease request: %v", err)
		return
	}
	job, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if job.TraceID != "" {
		w.Header().Set(obs.TraceIDHeader, job.TraceID)
	}
	writeJSON(w, http.StatusOK, map[string]Job{"job": job})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing job parameter")
		return
	}
	sh, err := DecodeShard(io.LimitReader(r.Body, MaxShardBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "decode shard: %v", err)
		return
	}
	// Worker-side spans ride the completion's X-Trace-Spans header; a
	// malformed header never fails the upload (the shard is the payload,
	// observability is best-effort).
	spans, serr := obs.UnmarshalSpans(r.Header.Get(obs.TraceSpansHeader))
	if serr != nil {
		spans = nil
	}
	status, err := c.Complete(id, r.URL.Query().Get("worker"), sh, spans...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, completeResponse{Status: status})
}

func (c *Coordinator) handlePopulation(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	c.mu.Lock()
	rec, ok := c.pops[key]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no population %q", key)
		return
	}
	b, err := rec.wire()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode population: %v", err)
		return
	}
	c.popFetches.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

// shardRange renders a [lo, hi) config range for span attrs.
func shardRange(lo, hi int) string { return strconv.Itoa(lo) + "-" + strconv.Itoa(hi) }

// safeKey guards the file-serving path: store keys are hex content hashes,
// so anything else (path separators, dots, ..) is rejected outright.
func safeKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, ch := range key {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-':
		default:
			return false
		}
	}
	return true
}

// handleBank serves a cached bank's raw bytes — the artifact exactly as the
// store persisted it (bankfmt/v3 or v4), streamed without decoding or
// re-encoding — so warm peers can seed cold ones (the read-through tier of
// dist.Builder). A key whose bank has been grown resolves through its store
// alias; the X-Bank-Key header names the entry actually served, so callers
// that need the exact requested content (the builder does — its cache key
// promises a specific config pool) can tell a moved bank from a hit.
func (c *Coordinator) handleBank(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !safeKey(key) {
		writeError(w, http.StatusBadRequest, "malformed bank key")
		return
	}
	store := c.opts.Store
	if store == nil {
		writeError(w, http.StatusNotFound, "no bank store")
		return
	}
	resolved := store.Resolve(key)
	if !safeKey(resolved) {
		writeError(w, http.StatusNotFound, "no bank %s", key)
		return
	}
	f, err := os.Open(store.Path(resolved))
	if err != nil {
		writeError(w, http.StatusNotFound, "no bank %s", key)
		return
	}
	defer f.Close()
	c.bankFetches.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Bank-Key", resolved)
	io.Copy(w, f)
}
