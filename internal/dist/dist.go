// Package dist shards bank construction across a fleet of worker processes.
//
// Bank building — training every configuration in the pool for the full
// round budget — is the dominant cold-run cost of the reproduction, and it
// is embarrassingly parallel by config index: core.BuildPlan derives every
// per-config RNG stream from (seed, "config-i") labels alone, so any process
// that can regenerate the population can train any index range and produce
// exactly the bytes a local build would. This package turns that property
// into a coordinator/worker protocol:
//
//   - The Coordinator splits a build into content-addressed shard jobs
//     (bank key + config index range), leases them to workers over HTTP,
//     reassembles completed shards with core.AssembleBank, and writes the
//     bank through the shared core.BankStore. Expired leases are re-queued;
//     duplicate or late completions are idempotent.
//   - A Worker (cmd/noisyworker) polls POST /v1/work/lease, fetches the
//     population once per content address, trains its range with the same
//     core.BuildPlan code path BuildBank uses, and uploads the shard via
//     POST /v1/work/complete.
//   - Builder implements core.BankBuilder as a tier stack: local store hit →
//     warm-peer fetch (GET /v1/banks/{key}) → coordinator-sharded build →
//     single-process fallback. exper.Suite and serve.Manager consume it
//     through the interface, so cmd/figures and noisyevald run in cluster
//     mode unchanged.
//
// Protocol (JSON envelopes; shard and bank payloads use the bankfmt/v3
// binary framing from core — fixed header, bulk little-endian float section
// decoded straight into a contiguous arena; populations remain gzipped gob):
//
//	POST /v1/work/lease              {"worker":"w1"} → 200 {job} | 204 no work
//	POST /v1/work/complete?job=&worker=   shard bytes → 200 {"status":"ok"|"duplicate"|"stale"}
//	GET  /v1/work/populations/{key}  population bytes for a leased job
//	GET  /v1/work/stats              coordinator counters
//	GET  /v1/banks/{key}             gzipped bank bytes from the store
//
// Trace propagation: a Job carries the trace ID of the build that spawned it
// (also echoed in the lease response's X-Trace-Id header), and a worker's
// POST /v1/work/complete returns its shard.train span in the X-Trace-Spans
// header (obs.MarshalSpans JSON), so worker-side timing attaches to the
// coordinator-side build trace under one trace ID.
//
// Determinism: an assembled bank is byte-identical to a single-process
// BuildBank of the same (population, options, seed) — pinned by
// TestShardedBuildByteIdentical and the CI cluster smoke job. See DESIGN.md
// §8 for the full argument.
package dist

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
)

// Job is the wire form of one leased shard: everything a worker needs to
// train configs [Lo, Hi) of one bank build. The ID is content-addressed —
// bank key plus index range — so re-leases of the same shard share an
// identity and completions deduplicate naturally.
type Job struct {
	ID      string `json:"id"`
	BankKey string `json:"bank_key"`
	// PopKey is the population's content fingerprint; workers fetch and
	// cache the population bytes under it (GET /v1/work/populations/{key}).
	PopKey string `json:"pop_key"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Seed   uint64 `json:"seed"`
	// OptsGob is the gob-encoded core.BuildOptions of the build (base64 on
	// the wire via encoding/json).
	OptsGob []byte `json:"opts_gob"`
	// Attempt counts prior leases of this shard (0 on first lease).
	Attempt int `json:"attempt"`
	// LeaseTTLSeconds tells the worker how long the lease is valid.
	LeaseTTLSeconds float64 `json:"lease_ttl_seconds"`
	// TraceID identifies the obs trace of the build this shard belongs to
	// ("" when the build was requested without a trace). Workers echo it on
	// completion so their spans attach to the right timeline.
	TraceID string `json:"trace_id,omitempty"`
}

// jobID renders the content address of one shard job.
func jobID(bankKey string, lo, hi int) string {
	return fmt.Sprintf("%s:%d-%d", bankKey, lo, hi)
}

// leaseRequest is the body of POST /v1/work/lease.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// completeResponse is the body of a POST /v1/work/complete answer.
type completeResponse struct {
	// Status is "ok" (shard accepted), "duplicate" (job already completed),
	// or "stale" (job's build no longer exists; the result was not needed).
	Status string `json:"status"`
}

// encodeGz writes v as gzipped gob.
func encodeGz(v any) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("dist: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Wire safety bounds. A full-scale shard (3 partitions × 8 configs × ~5
// rungs × 10k clients × 8 bytes) decompresses to tens of MB; the caps leave
// two orders of magnitude of headroom while keeping a hostile payload — the
// complete endpoint is reachable by anything that can reach the daemon —
// from inflating into an unbounded allocation. The bankfmt framing declares
// its arena size in the header, so the decoded cap is enforced before a
// single float is read.
const (
	// MaxShardBodyBytes bounds the compressed shard upload a coordinator
	// reads from one POST /v1/work/complete.
	MaxShardBodyBytes = 256 << 20
	// maxShardDecodedBytes bounds the error-arena allocation one decoded
	// shard may demand.
	maxShardDecodedBytes = 1 << 30
)

// decodeGz reads one gzipped gob value from r into v, refusing to inflate
// more than limit decompressed bytes (limit <= 0 = unbounded, for payloads
// from trusted in-process sources).
func decodeGz(r io.Reader, v any, limit int64) error {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return fmt.Errorf("dist: decode: %w", err)
	}
	defer zr.Close()
	var src io.Reader = zr
	if limit > 0 {
		src = io.LimitReader(zr, limit)
	}
	if err := gob.NewDecoder(src).Decode(v); err != nil {
		return fmt.Errorf("dist: decode: %w", err)
	}
	return nil
}

// EncodeShard renders a shard for the wire: bankfmt/v3 shard framing, whose
// bulk section is the shard's contiguous error arena (written in one run,
// gzip-framed). Workers upload exactly these bytes.
func EncodeShard(sh *core.BankShard) ([]byte, error) {
	var buf bytes.Buffer
	if err := core.EncodeShard(&buf, sh); err != nil {
		return nil, fmt.Errorf("dist: encode shard: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeShard reads one EncodeShard payload straight into a fresh arena the
// coordinator's reassembly block-copies from. The arena allocation is
// bounded by the header's declared size: a payload claiming more than
// maxShardDecodedBytes fails to decode instead of exhausting memory.
func DecodeShard(r io.Reader) (*core.BankShard, error) {
	sh, err := core.DecodeShard(r, maxShardDecodedBytes)
	if err != nil {
		return nil, fmt.Errorf("dist: decode shard: %w", err)
	}
	return sh, nil
}

// EncodePopulation renders a population for the wire (gzipped gob).
func EncodePopulation(p *data.Population) ([]byte, error) { return encodeGz(p) }

// DecodePopulation reads one EncodePopulation payload (workers only decode
// populations from the coordinator they chose to pull from, so the stream
// is unbounded).
func DecodePopulation(r io.Reader) (*data.Population, error) {
	var p data.Population
	if err := decodeGz(r, &p, 0); err != nil {
		return nil, err
	}
	return &p, nil
}

// encodeOptions renders build options for a Job (plain gob: small, and the
// JSON envelope already base64s it).
func encodeOptions(opts core.BuildOptions) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(opts); err != nil {
		return nil, fmt.Errorf("dist: encode options: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeOptions reads a Job's OptsGob back into build options.
func DecodeOptions(b []byte) (core.BuildOptions, error) {
	var opts core.BuildOptions
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&opts); err != nil {
		return core.BuildOptions{}, fmt.Errorf("dist: decode options: %w", err)
	}
	return opts, nil
}
