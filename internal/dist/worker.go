package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/obs"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8723).
	Coordinator string
	// Name identifies this worker in leases and coordinator stats
	// (default host-pid).
	Name string
	// Poll is the idle re-lease interval (default 500ms).
	Poll time.Duration
	// Workers bounds per-shard training parallelism (0 = GOMAXPROCS).
	Workers int
	// Client is the HTTP client (default: 2-minute timeout — shard uploads
	// carry full error tensors).
	Client *http.Client
	// Metrics, when set, receives the worker's instruments
	// (worker_shard_train_seconds plus counter views over the lifetime
	// counters); cmd/noisyworker serves it at GET /metrics.
	Metrics *obs.Registry
}

// WorkerCounters is a snapshot of one worker's lifetime counters, surfaced
// at cmd/noisyworker's /debug/vars (the CI cluster job asserts on
// shards_built).
type WorkerCounters struct {
	Leases        int64 `json:"leases"`         // successful leases
	LeaseEmpty    int64 `json:"lease_empty"`    // polls that found no work
	LeaseErrors   int64 `json:"lease_errors"`   // transport/protocol failures
	ShardsBuilt   int64 `json:"shards_built"`   // shards trained and accepted
	ShardsFailed  int64 `json:"shards_failed"`  // shards that failed locally or were rejected
	PopFetches    int64 `json:"pop_fetches"`    // populations downloaded
	BytesUploaded int64 `json:"bytes_uploaded"` // encoded shard bytes posted
}

// Worker is the lease-loop client of a Coordinator: it pulls shard jobs,
// regenerates nothing — populations arrive by content address and are cached
// — and trains its index ranges with the exact core.BuildPlan path a local
// BuildBank uses, so its shards are byte-identical to locally built ones.
type Worker struct {
	opts WorkerOptions

	mu    sync.Mutex
	pops  map[string]*data.Population // by population fingerprint
	plans map[string]*core.BuildPlan  // by bank key (pop + opts + seed)

	trainSeconds *obs.Histogram // nil when no Metrics registry was given

	leases, leaseEmpty, leaseErrors atomic.Int64
	shardsBuilt, shardsFailed       atomic.Int64
	popFetches, bytesUploaded       atomic.Int64
}

// NewWorker creates a worker for the coordinator at base URL coord.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	w := &Worker{
		opts:  opts,
		pops:  map[string]*data.Population{},
		plans: map[string]*core.BuildPlan{},
	}
	if reg := opts.Metrics; reg != nil {
		w.trainSeconds = reg.Histogram("worker_shard_train_seconds",
			"Wall-clock seconds training one leased shard.", nil)
		reg.CounterFunc("worker_leases_total", "Successful shard leases.", w.leases.Load)
		reg.CounterFunc("worker_lease_empty_total", "Polls that found no work.", w.leaseEmpty.Load)
		reg.CounterFunc("worker_lease_errors_total", "Lease transport/protocol failures.", w.leaseErrors.Load)
		reg.CounterFunc("worker_shards_built_total", "Shards trained and accepted.", w.shardsBuilt.Load)
		reg.CounterFunc("worker_shards_failed_total", "Shards that failed locally or were rejected.", w.shardsFailed.Load)
		reg.CounterFunc("worker_pop_fetches_total", "Populations downloaded.", w.popFetches.Load)
		reg.CounterFunc("worker_bytes_uploaded_total", "Encoded shard bytes posted.", w.bytesUploaded.Load)
	}
	return w
}

// Name returns the worker's lease identity.
func (w *Worker) Name() string { return w.opts.Name }

// Counters snapshots the worker's lifetime counters.
func (w *Worker) Counters() WorkerCounters {
	return WorkerCounters{
		Leases:        w.leases.Load(),
		LeaseEmpty:    w.leaseEmpty.Load(),
		LeaseErrors:   w.leaseErrors.Load(),
		ShardsBuilt:   w.shardsBuilt.Load(),
		ShardsFailed:  w.shardsFailed.Load(),
		PopFetches:    w.popFetches.Load(),
		BytesUploaded: w.bytesUploaded.Load(),
	}
}

// Run leases and builds shards until ctx is cancelled. Cancellation drains
// gracefully: the shard in flight is finished and uploaded before Run
// returns, so its lease never has to expire. Transport errors back off to
// the poll interval and keep trying — a worker outliving a coordinator
// restart simply resumes.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		job, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.leaseErrors.Add(1)
			w.sleep(ctx)
			continue
		}
		if !ok {
			w.leaseEmpty.Add(1)
			w.sleep(ctx)
			continue
		}
		w.leases.Add(1)
		if err := w.process(ctx, job); err != nil {
			w.shardsFailed.Add(1)
		} else {
			w.shardsBuilt.Add(1)
		}
	}
}

func (w *Worker) sleep(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(w.opts.Poll):
	}
}

// lease asks the coordinator for one shard job.
func (w *Worker) lease(ctx context.Context) (Job, bool, error) {
	body, _ := json.Marshal(leaseRequest{Worker: w.opts.Name})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+"/v1/work/lease", bytes.NewReader(body))
	if err != nil {
		return Job{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return Job{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return Job{}, false, nil
	case http.StatusOK:
		var envelope struct {
			Job Job `json:"job"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			return Job{}, false, fmt.Errorf("dist: decode lease: %w", err)
		}
		return envelope.Job, true, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return Job{}, false, fmt.Errorf("dist: lease: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
}

// process builds one leased shard end to end and uploads it. The upload
// deliberately ignores ctx: a drained worker finishes and delivers in-flight
// work instead of wasting it.
func (w *Worker) process(ctx context.Context, job Job) error {
	plan, err := w.plan(ctx, job)
	if err != nil {
		return err
	}
	start := time.Now()
	sh, err := plan.TrainRange(job.Lo, job.Hi, w.opts.Workers)
	if err != nil {
		return err
	}
	dur := time.Since(start)
	if w.trainSeconds != nil {
		w.trainSeconds.Observe(dur.Seconds())
	}
	var spans []obs.Span
	if job.TraceID != "" {
		spans = []obs.Span{{
			Name: "shard.train", Start: start, Dur: dur,
			Attrs: []string{"worker", w.opts.Name, "range", shardRange(job.Lo, job.Hi)},
		}}
	}
	return w.complete(job, sh, spans)
}

// cacheCap bounds the worker's population and plan caches. Entries are
// content-addressed, so evicting one only costs a re-fetch/re-derivation —
// the cap just keeps a worker serving many coordinators/builds from
// accumulating every population it has ever seen.
const cacheCap = 8

// plan returns the build plan for the job's bank, deriving it once per bank
// key: shards of one build share the skeleton (repartition pools, sampled
// config pool), so leasing 16 shards must not repartition 16 times.
func (w *Worker) plan(ctx context.Context, job Job) (*core.BuildPlan, error) {
	w.mu.Lock()
	plan, ok := w.plans[job.BankKey]
	w.mu.Unlock()
	if ok {
		return plan, nil
	}
	pop, err := w.population(ctx, job.PopKey)
	if err != nil {
		return nil, err
	}
	opts, err := DecodeOptions(job.OptsGob)
	if err != nil {
		return nil, err
	}
	plan, err = core.NewBuildPlan(pop, opts, job.Seed)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	evictOver(w.plans, cacheCap)
	w.plans[job.BankKey] = plan
	w.mu.Unlock()
	return plan, nil
}

// evictOver drops arbitrary entries until the map is under cap (content-
// addressed caches tolerate arbitrary eviction; a miss just re-derives).
func evictOver[V any](m map[string]V, cap int) {
	for k := range m {
		if len(m) < cap {
			return
		}
		delete(m, k)
	}
}

// population returns the cached population for key, fetching it from the
// coordinator on first use. Content addressing makes the cache trivially
// correct: one fingerprint, one immutable population.
func (w *Worker) population(ctx context.Context, key string) (*data.Population, error) {
	w.mu.Lock()
	pop, ok := w.pops[key]
	w.mu.Unlock()
	if ok {
		return pop, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opts.Coordinator+"/v1/work/populations/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("dist: fetch population %s: %s: %s", key, resp.Status, bytes.TrimSpace(b))
	}
	pop, err = DecodePopulation(resp.Body)
	if err != nil {
		return nil, err
	}
	w.popFetches.Add(1)
	w.mu.Lock()
	evictOver(w.pops, cacheCap)
	w.pops[key] = pop
	w.mu.Unlock()
	return pop, nil
}

// complete uploads one finished shard, carrying any trace spans in request
// headers so they attach to the build's trace on the coordinator.
func (w *Worker) complete(job Job, sh *core.BankShard, spans []obs.Span) error {
	payload, err := EncodeShard(sh)
	if err != nil {
		return err
	}
	q := url.Values{"job": {job.ID}, "worker": {w.opts.Name}}
	req, err := http.NewRequest(http.MethodPost,
		w.opts.Coordinator+"/v1/work/complete?"+q.Encode(), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if job.TraceID != "" && len(spans) > 0 {
		req.Header.Set(obs.TraceIDHeader, job.TraceID)
		if enc, err := obs.MarshalSpans(spans); err == nil {
			req.Header.Set(obs.TraceSpansHeader, enc)
		}
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("dist: complete %s: %s: %s", job.ID, resp.Status, bytes.TrimSpace(b))
	}
	w.bytesUploaded.Add(int64(len(payload)))
	return nil
}
