package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// failureCluster starts a coordinator on a fake clock with one pending
// 2-shard build, returning the coordinator, the clock, the build's plan
// (for training shards protocol-side), and the result channel of the
// in-flight BuildSharded call.
func failureCluster(t *testing.T) (*Coordinator, *fakeClock, *core.BuildPlan, chan error) {
	t.Helper()
	clock := newFakeClock()
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorOptions{
		Store:        store,
		ShardConfigs: 2,
		LeaseTTL:     time.Minute,
		Clock:        clock.Now,
	})
	t.Cleanup(coord.Close)

	pop, opts, seed := testPop(t), testOpts(), uint64(13)
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	result := make(chan error, 1)
	go func() {
		_, err := coord.BuildSharded(context.Background(), pop, opts, seed)
		result <- err
	}()
	// Wait for the jobs to be enqueued before tests start leasing.
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		if coord.Stats().ShardsPending+coord.Stats().ShardsLeased >= 2 {
			break
		}
	}
	return coord, clock, plan, result
}

// mustTrain trains one shard range protocol-side.
func mustTrain(t *testing.T, plan *core.BuildPlan, lo, hi int) *core.BankShard {
	t.Helper()
	sh, err := plan.TrainRange(lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// waitBuild asserts the in-flight build finishes cleanly.
func waitBuild(t *testing.T, result chan error) {
	t.Helper()
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("build failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("build did not finish")
	}
}

// TestLeaseExpiryRequeues drives the worker-crash-mid-shard scenario on a
// fake clock: worker A leases a shard and dies; after the lease TTL the
// shard is re-leased to worker B, whose completion finishes the build. A's
// late upload afterwards is acknowledged as a no-op.
func TestLeaseExpiryRequeues(t *testing.T) {
	coord, clock, plan, result := failureCluster(t)

	jobA, ok := coord.Lease("crashing-worker")
	if !ok {
		t.Fatal("no job leased")
	}
	// Within the TTL the shard must NOT be handed out again: the other
	// pending job leases, then the queue runs dry.
	other, ok := coord.Lease("healthy-worker")
	if !ok {
		t.Fatal("second job not leased")
	}
	if other.ID == jobA.ID {
		t.Fatal("live lease was double-assigned")
	}
	if _, ok := coord.Lease("healthy-worker"); ok {
		t.Fatal("leased a job while both shards were held under live leases")
	}
	// The healthy worker finishes its shard inside its TTL, so the later
	// clock jump expires exactly one lease: the crashed worker's.
	if status, err := coord.Complete(other.ID, "healthy-worker", mustTrain(t, plan, other.Lo, other.Hi)); err != nil || status != "ok" {
		t.Fatalf("complete %s = %q, %v", other.ID, status, err)
	}

	// Worker A crashes (never completes). Past the TTL its shard re-leases.
	clock.Advance(2 * time.Minute)
	jobA2, ok := coord.Lease("healthy-worker")
	if !ok {
		t.Fatal("expired lease was not requeued")
	}
	if jobA2.ID != jobA.ID {
		t.Fatalf("requeued job = %s, want %s", jobA2.ID, jobA.ID)
	}
	if jobA2.Attempt != 1 {
		t.Errorf("requeued attempt = %d, want 1", jobA2.Attempt)
	}
	if got := coord.Stats().ShardsRequeued; got != 1 {
		t.Errorf("requeued counter = %d, want 1", got)
	}

	// Completing the re-leased shard finishes the build.
	if status, err := coord.Complete(jobA2.ID, "healthy-worker", mustTrain(t, plan, jobA2.Lo, jobA2.Hi)); err != nil || status != "ok" {
		t.Fatalf("complete %s = %q, %v", jobA2.ID, status, err)
	}
	waitBuild(t, result)

	// The crashed worker resurrects and uploads its stale shard: the job is
	// gone with the finished build, so the answer is a harmless "stale".
	status, err := coord.Complete(jobA.ID, "crashing-worker", mustTrain(t, plan, jobA.Lo, jobA.Hi))
	if err != nil || status != "stale" {
		t.Errorf("late complete after build = %q, %v; want stale, nil", status, err)
	}
}

// TestDuplicateCompletionIdempotent: two workers racing one shard (a lease
// that expired mid-build, then both finish) must not corrupt the build —
// the second completion is acknowledged as a duplicate and discarded.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	coord, clock, plan, result := failureCluster(t)

	jobA, _ := coord.Lease("slow-worker")
	clock.Advance(2 * time.Minute) // slow-worker's lease expires mid-build

	// The requeued shard sits behind the never-leased one in the FIFO;
	// lease until the fast worker holds the expired shard plus the rest.
	var jobA2 Job
	var others []Job
	for jobA2.ID == "" {
		j, ok := coord.Lease("fast-worker")
		if !ok {
			t.Fatalf("expired shard never re-leased (held %d others)", len(others))
		}
		if j.ID == jobA.ID {
			jobA2 = j
		} else {
			others = append(others, j)
		}
	}
	if jobA2.Attempt != 1 {
		t.Errorf("re-leased attempt = %d, want 1", jobA2.Attempt)
	}

	sh := mustTrain(t, plan, jobA.Lo, jobA.Hi)
	if status, err := coord.Complete(jobA.ID, "fast-worker", sh); err != nil || status != "ok" {
		t.Fatalf("first complete = %q, %v", status, err)
	}
	// The slow worker finishes the same shard late: duplicate, no effect
	// (the build is still live — the other shard is outstanding).
	if status, err := coord.Complete(jobA.ID, "slow-worker", sh); err != nil || status != "duplicate" {
		t.Fatalf("duplicate complete = %q, %v", status, err)
	}
	if got := coord.Stats().ShardsDuplicate; got != 1 {
		t.Errorf("duplicate counter = %d, want 1", got)
	}
	if got := coord.Stats().ShardsCompleted; got != 1 {
		t.Errorf("completed counter = %d, want 1 (duplicate must not double-count)", got)
	}

	for _, j := range others {
		if status, err := coord.Complete(j.ID, "fast-worker", mustTrain(t, plan, j.Lo, j.Hi)); err != nil || status != "ok" {
			t.Fatalf("complete %s = %q, %v", j.ID, status, err)
		}
	}
	waitBuild(t, result)
}

// TestMalformedShardRequeues: a shard whose range or shape does not match
// the job is rejected, the job goes back on the queue, and a correct
// completion afterwards still succeeds.
func TestMalformedShardRequeues(t *testing.T) {
	coord, _, plan, result := failureCluster(t)

	jobA, _ := coord.Lease("w")
	jobB, _ := coord.Lease("w")

	// Wrong range: trained [lo, hi) of the OTHER job.
	wrong := mustTrain(t, plan, jobB.Lo, jobB.Hi)
	if _, err := coord.Complete(jobA.ID, "w", wrong); err == nil {
		t.Fatal("range-mismatched shard accepted")
	}
	if got := coord.Stats().ShardsRejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Truncated shape under the right range.
	bad := &core.BankShard{Lo: jobA.Lo, Hi: jobA.Hi, Diverged: make([]bool, jobA.Hi-jobA.Lo)}
	if _, err := coord.Complete(jobA.ID, "w", bad); err == nil {
		t.Fatal("shape-mismatched shard accepted")
	}

	// The rejected job must be leasable again and completable.
	jobA2, ok := coord.Lease("w2")
	if !ok || jobA2.ID != jobA.ID {
		t.Fatalf("rejected job not requeued (got %v, %v)", jobA2.ID, ok)
	}
	if status, err := coord.Complete(jobA.ID, "w2", mustTrain(t, plan, jobA.Lo, jobA.Hi)); err != nil || status != "ok" {
		t.Fatalf("complete after rejection = %q, %v", status, err)
	}
	if status, err := coord.Complete(jobB.ID, "w", mustTrain(t, plan, jobB.Lo, jobB.Hi)); err != nil || status != "ok" {
		t.Fatalf("complete = %q, %v", status, err)
	}
	waitBuild(t, result)
}

// TestUnknownCompletionIsStale: completing a job that never existed is
// acknowledged without effect.
func TestUnknownCompletionIsStale(t *testing.T) {
	coord, _, plan, result := failureCluster(t)
	sh := mustTrain(t, plan, 0, 1)
	if status, err := coord.Complete("no-such-job", "w", sh); err != nil || status != "stale" {
		t.Errorf("unknown complete = %q, %v; want stale, nil", status, err)
	}
	for {
		j, ok := coord.Lease("w")
		if !ok {
			break
		}
		if status, err := coord.Complete(j.ID, "w", mustTrain(t, plan, j.Lo, j.Hi)); err != nil || status != "ok" {
			t.Fatalf("complete = %q, %v", status, err)
		}
	}
	waitBuild(t, result)
}

// TestAttemptCapFailsBuild: a shard whose leases keep expiring (a
// deterministically failing or always-crashing fleet) must fail the build
// with an error — the contract local BuildBank gives its callers — instead
// of re-queueing forever and hanging every waiter.
func TestAttemptCapFailsBuild(t *testing.T) {
	clock := newFakeClock()
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorOptions{
		Store:        store,
		ShardConfigs: 2,
		LeaseTTL:     time.Minute,
		MaxAttempts:  2,
		Clock:        clock.Now,
	})
	t.Cleanup(coord.Close)

	pop, opts, seed := testPop(t), testOpts(), uint64(17)
	result := make(chan error, 1)
	go func() {
		_, err := coord.BuildSharded(context.Background(), pop, opts, seed)
		result <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		if st := coord.Stats(); st.ShardsPending+st.ShardsLeased >= 2 {
			break
		}
	}

	// Burn through the lease attempts without ever completing.
	for attempt := 0; ; attempt++ {
		if _, ok := coord.Lease("doomed"); !ok {
			break // cap tripped: the build failed and its jobs are gone
		}
		if attempt > 10 {
			t.Fatal("attempt cap never tripped")
		}
		clock.Advance(2 * time.Minute)
	}
	select {
	case err := <-result:
		if err == nil {
			t.Fatal("build with a permanently failing fleet returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("build did not fail after the attempt cap")
	}
	if got := coord.Stats().BuildsFailed; got != 1 {
		t.Errorf("builds failed = %d, want 1", got)
	}
	// The failed build's jobs are stale, not retryable.
	if status, err := coord.Complete("anything", "doomed", mustTrainPlan(t, pop, opts, seed, 0, 1)); err != nil || status != "stale" {
		t.Errorf("complete after failed build = %q, %v; want stale", status, err)
	}
}

// TestStallTimeoutFailsBuild: when the entire fleet disappears — no lease,
// no completion, no self-build — the sweeper's stall backstop must fail the
// build so waiters get an error instead of hanging until restart.
func TestStallTimeoutFailsBuild(t *testing.T) {
	clock := newFakeClock()
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorOptions{
		Store:        store,
		ShardConfigs: 2,
		LeaseTTL:     time.Minute,
		StallTimeout: 5 * time.Minute,
		Clock:        clock.Now,
	})
	t.Cleanup(coord.Close)

	pop, opts, seed := testPop(t), testOpts(), uint64(23)
	result := make(chan error, 1)
	go func() {
		_, err := coord.BuildSharded(context.Background(), pop, opts, seed)
		result <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		if st := coord.Stats(); st.ShardsPending >= 2 {
			break
		}
	}

	// Under the timeout nothing happens.
	clock.Advance(4 * time.Minute)
	coord.Sweep()
	select {
	case err := <-result:
		t.Fatalf("build failed before the stall timeout: %v", err)
	default:
	}

	// Past it, the build fails with a diagnosable error.
	clock.Advance(2 * time.Minute)
	coord.Sweep()
	select {
	case err := <-result:
		if err == nil {
			t.Fatal("stalled build returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled build never failed")
	}
	if got := coord.Stats().BuildsFailed; got != 1 {
		t.Errorf("builds failed = %d, want 1", got)
	}
}

// mustTrainPlan trains one range from scratch inputs (for tests that never
// built a plan).
func mustTrainPlan(t *testing.T, pop *data.Population, opts core.BuildOptions, seed uint64, lo, hi int) *core.BankShard {
	t.Helper()
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return mustTrain(t, plan, lo, hi)
}

// TestWorkerCrashMidShardEndToEnd is the wire-level version of the crash
// scenario: a real worker whose context dies mid-lease leaves the shard to
// a second real worker after the TTL, and the assembled bank still matches
// a local build byte for byte.
func TestWorkerCrashMidShardEndToEnd(t *testing.T) {
	clock := newFakeClock()
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorOptions{
		Store:        store,
		ShardConfigs: 2,
		LeaseTTL:     time.Minute,
		Clock:        clock.Now,
	})
	t.Cleanup(coord.Close)
	mux := http.NewServeMux()
	coord.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	pop, opts, seed := testPop(t), testOpts(), uint64(21)
	result := make(chan error, 1)
	var bank *core.Bank
	go func() {
		var err error
		bank, err = coord.BuildSharded(context.Background(), pop, opts, seed)
		result <- err
	}()

	// Crash: lease one shard at the protocol level and walk away.
	var crashed Job
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		if j, ok := coord.Lease("crashed"); ok {
			crashed = j
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard to lease")
		}
	}
	clock.Advance(2 * time.Minute) // the crashed worker's lease expires

	// A real worker drains the queue, including the re-leased shard.
	startWorker(t, ts.URL, "survivor")
	waitBuild(t, result)

	local, err := core.BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankFingerprint(bank) != core.BankFingerprint(local) {
		t.Error("bank after crash/requeue differs from local build")
	}
	if crashed.ID == "" {
		t.Fatal("crash scenario never leased")
	}
	if got := coord.Stats().ShardsRequeued; got < 1 {
		t.Errorf("requeued counter = %d, want >= 1", got)
	}
}
