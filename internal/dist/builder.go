package dist

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/obs"
)

// Builder is the cluster-aware core.BankBuilder: a read-through tier stack
// over the same content address every layer of the system shares.
//
//	local store hit  →  cached bank, no work
//	warm peer hit    →  GET /v1/banks/{key} from a peer, persisted locally
//	coordinator      →  sharded build across the worker fleet
//	fallback         →  single-process BuildBankCached
//
// Suite-level once-per-key guards and the store's singleflight keep
// concurrent requests for one key from racing down the stack.
type Builder struct {
	// Store is the local content-addressed cache (nil = no local tier).
	Store *core.BankStore
	// Peers are base URLs of warm daemons whose /v1/banks/{key} endpoint
	// can seed this process without retraining.
	Peers []string
	// Coord, when set, shards cold builds across the fleet.
	Coord *Coordinator
	// Client fetches from peers (default: 5-second timeout — a warm peer
	// answers from a local file, and peers are probed serially ahead of
	// the build tiers, so a hung peer must not stall cold builds).
	Client *http.Client

	peerHits, peerMisses atomic.Int64
}

// BuilderStats reports the peer tier's effectiveness.
type BuilderStats struct {
	PeerHits   int64 `json:"peer_hits"`
	PeerMisses int64 `json:"peer_misses"`
}

// Stats snapshots the builder counters.
func (b *Builder) Stats() BuilderStats {
	return BuilderStats{PeerHits: b.peerHits.Load(), PeerMisses: b.peerMisses.Load()}
}

// BuildBank implements core.BankBuilder. cached reports that no training was
// scheduled anywhere on behalf of this call (local or peer hit). The ctx's
// obs.Trace (when present) gets a bank.lookup span naming the tier that
// satisfied the request, and sharded builds propagate the trace into the
// coordinator so worker shard spans join the same timeline.
func (b *Builder) BuildBank(ctx context.Context, pop *data.Population, opts core.BuildOptions, seed uint64) (*core.Bank, bool, error) {
	tr := obs.TraceFrom(ctx)
	key := core.BankKeyForPopulation(pop, opts, seed)
	start := time.Now()
	if bank, err := b.Store.Get(key); err == nil && bank != nil {
		tr.AddSpan("bank.lookup", start, time.Since(start),
			"key", core.ShortKey(key), "tier", "store", "hit", "true")
		return bank, true, nil
	}
	if bank := b.fetchFromPeers(key); bank != nil {
		if b.Store != nil {
			b.Store.Put(key, bank) // best-effort, like every cache write
		}
		tr.AddSpan("bank.lookup", start, time.Since(start),
			"key", core.ShortKey(key), "tier", "peer", "hit", "true")
		return bank, true, nil
	}
	tr.AddSpan("bank.lookup", start, time.Since(start),
		"key", core.ShortKey(key), "hit", "false")
	if b.Coord != nil {
		sp := tr.StartSpan("bank.build", "key", core.ShortKey(key), "source", "fleet")
		bank, err := b.Coord.BuildSharded(ctx, pop, opts, seed)
		sp.End()
		return bank, false, err
	}
	return core.BuildBankCached(ctx, b.Store, pop, opts, seed)
}

// fetchFromPeers tries each warm peer in order and returns the first bank
// that downloads and validates. Peer failures are soft: a dead or cold peer
// just means building locally.
func (b *Builder) fetchFromPeers(key string) *core.Bank {
	if len(b.Peers) == 0 || !safeKey(key) {
		return nil
	}
	client := b.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	for _, peer := range b.Peers {
		bank, err := fetchBank(client, peer, key)
		if err != nil {
			b.peerMisses.Add(1)
			continue
		}
		b.peerHits.Add(1)
		return bank
	}
	return nil
}

// fetchBank downloads and decodes one bank from a peer.
func fetchBank(client *http.Client, peer, key string) (*core.Bank, error) {
	resp, err := client.Get(peer + "/v1/banks/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: peer %s: %s", peer, resp.Status)
	}
	// A peer serves grown banks through store aliases; a moved key means the
	// peer no longer holds the exact pool this build's content address
	// promises, so it is a miss here, not a substitute.
	if got := resp.Header.Get("X-Bank-Key"); got != "" && got != key {
		return nil, fmt.Errorf("dist: peer %s: bank %s grown into %s", peer, key, got)
	}
	// The wire bytes are the store's on-disk encoding; DecodeBank validates
	// before the bank is trusted or persisted.
	return core.DecodeBank(resp.Body)
}
