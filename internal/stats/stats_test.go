package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Median(xs) != 2 {
		t.Errorf("median = %g", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile([]float64{5}, 0.7) != 5 {
		t.Error("single-element quantile")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Errorf("q25 = %g, want 2.5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 {
		t.Error("input mutated")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	g := rng.New(1)
	f := func(seed uint8) bool {
		n := int(seed%20) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.Float64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q>1":   func() { Quantile([]float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuartiles(t *testing.T) {
	q1, med, q3 := Quartiles([]float64{1, 2, 3, 4, 5})
	if q1 != 2 || med != 3 || q3 != 4 {
		t.Errorf("quartiles = %g %g %g", q1, med, q3)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %g", Mean(xs))
	}
	if Std(xs) != 2 {
		t.Errorf("std = %g", Std(xs))
	}
	if Mean(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate cases")
	}
}

func TestMinMaxArgMin(t *testing.T) {
	xs := []float64{3, -1, 4, -1}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Error("min/max")
	}
	if ArgMin(xs) != 1 {
		t.Errorf("argmin = %d, want 1 (first tie)", ArgMin(xs))
	}
}

func TestBootstrapIndices(t *testing.T) {
	g := rng.New(2)
	idx := BootstrapIndices(128, 16, g)
	if len(idx) != 16 {
		t.Fatalf("len = %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 128 {
			t.Fatalf("index %d out of range", i)
		}
	}
	// With replacement: over many draws, duplicates must occur.
	dups := 0
	for trial := 0; trial < 50; trial++ {
		s := BootstrapIndices(16, 16, g)
		seen := map[int]bool{}
		for _, v := range s {
			if seen[v] {
				dups++
				break
			}
			seen[v] = true
		}
	}
	if dups == 0 {
		t.Error("bootstrap never produced duplicates; should sample with replacement")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 || s.Mean != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect corr = %g", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorr = %g", got)
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant side should give 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform preserves Spearman = 1.
	xs := []float64{0.1, 0.5, 0.9, 2.5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone Spearman = %g", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ranks = %v, want %v", r, want)
			break
		}
	}
}

func TestRanksAreAPermutationWhenUnique(t *testing.T) {
	g := rng.New(3)
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = g.Float64()
	}
	r := Ranks(xs)
	sorted := append([]float64(nil), r...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		if v != float64(i+1) {
			t.Fatalf("ranks not 1..n: %v", r)
		}
	}
}
