// Package stats provides the summary statistics used to report experiments:
// medians and quartiles over tuning trials (the paper plots median and fills
// lower/upper quartiles), means, standard deviations, bootstrap resampling,
// and rank correlation for the proxy-transfer analysis.
package stats

import (
	"fmt"
	"math"
	"sort"

	"noisyeval/internal/rng"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0, 1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quartiles returns the (25th, 50th, 75th) percentiles.
func Quartiles(xs []float64) (q1, med, q3 float64) {
	return Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum; panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the minimum (first on ties).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// BootstrapIndices returns k indices drawn uniformly with replacement from
// [0, n) — the paper's bootstrap of K=16 RS configs from the bank of 128.
func BootstrapIndices(n, k int, g *rng.RNG) []int {
	if n <= 0 || k < 0 {
		panic(fmt.Sprintf("stats: BootstrapIndices(n=%d, k=%d)", n, k))
	}
	out := make([]int, k)
	for i := range out {
		out[i] = g.IntN(n)
	}
	return out
}

// Summary is a five-number trial summary used by figure series.
type Summary struct {
	Q1, Median, Q3 float64
	Mean           float64
	N              int
}

// Summarize computes a Summary over trial outcomes.
func Summarize(xs []float64) Summary {
	q1, med, q3 := Quartiles(xs)
	return Summary{Q1: q1, Median: med, Q3: q3, Mean: Mean(xs), N: len(xs)}
}

// Pearson returns the Pearson correlation of paired samples. It panics on
// length mismatch and returns 0 when either side is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples,
// used to quantify how well hyperparameter rankings transfer between proxy
// and client datasets (Figures 10/14).
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
