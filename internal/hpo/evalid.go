package hpo

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// IDCache interns the "<prefix><n>" strings methods use as evaluation-cohort
// names (evalIDs) and the oracle uses as trial salts. The legacy derivation
// built these with fmt.Sprintf on every evaluation — measurable garbage when
// a blocked run issues hundreds of thousands of evaluations per second. The
// cache hands back one shared string per index: byte-identical to the
// Sprintf form (pinned by TestIDCacheMatchesSprintf), allocation-free on the
// steady-state path, and safe for concurrent use (reads are a single atomic
// load; growth is serialized by a mutex and publishes a fresh table).
type IDCache struct {
	prefix string
	mu     sync.Mutex
	v      atomic.Pointer[[]string]
}

// NewIDCache returns a cache whose ID(n) is prefix + decimal(n).
func NewIDCache(prefix string) *IDCache { return &IDCache{prefix: prefix} }

// ID returns the interned string prefix + decimal(n), byte-identical to
// fmt.Sprintf("%s%d", prefix, n).
func (t *IDCache) ID(n int) string {
	if tab := t.v.Load(); tab != nil && n >= 0 && n < len(*tab) {
		return (*tab)[n]
	}
	return t.slow(n)
}

func (t *IDCache) slow(n int) string {
	if n < 0 {
		// Never hit by the methods (indices count up from zero); keep the
		// contract total without polluting the table.
		return t.prefix + strconv.Itoa(n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur []string
	if p := t.v.Load(); p != nil {
		cur = *p
	}
	if n < len(cur) {
		return cur[n]
	}
	size := 2 * len(cur)
	if size < n+1 {
		size = n + 1
	}
	if size < 64 {
		size = 64
	}
	tab := make([]string, size)
	copy(tab, cur)
	for i := len(cur); i < size; i++ {
		tab[i] = t.prefix + strconv.Itoa(i)
	}
	t.v.Store(&tab)
	return tab[n]
}

// Method-loop evalID tables. One table per prefix keeps every trial of every
// run sharing the same interned strings.
var (
	rsEvalIDs    = NewIDCache("rs-eval-")
	gridEvalIDs  = NewIDCache("grid-eval-")
	tpeEvalIDs   = NewIDCache("tpe-eval-")
	nboInitIDs   = NewIDCache("nbo-init-")
	nboTSIDs     = NewIDCache("nbo-ts-")
	fedpopGenIDs = NewIDCache("fedpop-gen-")
	proxyEvalIDs = NewIDCache("proxy-eval-")
)
