package hpo

import (
	"sort"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// BOHB (Falkner et al., 2018) replaces Hyperband's random config sampling
// with TPE proposals fit on the observations gathered so far, using the
// largest fidelity that has enough points; a fixed fraction of proposals
// stays random to preserve Hyperband's theoretical guarantees. The study
// finds BOHB is the strongest method under noiseless evaluation and among
// the weakest under noisy evaluation (Observation 6): its model is fit on
// exactly the noisy low-fidelity scores that subsampling and DP corrupt.
type BOHB struct {
	// RandomFraction of proposals bypass the model (default 1/3).
	RandomFraction float64
	// MinPoints is the number of observations a fidelity needs before the
	// model is used (default 6 = tuned dims + 1).
	MinPoints int
	// TPE configures the underlying proposal model.
	TPE TPE
}

// Name implements Method.
func (BOHB) Name() string { return "BOHB" }

// Run implements Method.
func (b BOHB) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	if b.RandomFraction <= 0 || b.RandomFraction >= 1 {
		b.RandomFraction = 1.0 / 3
	}
	if b.MinPoints < 2 {
		b.MinPoints = 6
	}
	h := &History{MethodName: "BOHB"}
	state := &bohbState{cfg: b, tpe: b.TPE.normalize(), byFidelity: map[int][]scoredConfig{}}
	runHyperbandLoop(o, space, s, g, h, state)
	return h
}

// bohbState accumulates rung observations per fidelity and proposes configs.
type bohbState struct {
	cfg        BOHB
	tpe        TPE
	byFidelity map[int][]scoredConfig
}

// observe records a rung's noisy scores (SHA callback).
func (st *bohbState) observe(fidelity int, cfgs []fl.HParams, noisy []float64) {
	for i, c := range cfgs {
		st.byFidelity[fidelity] = append(st.byFidelity[fidelity], scoredConfig{cfg: c, err: noisy[i]})
	}
}

// propose returns the next candidate: random with probability
// RandomFraction or when no fidelity has enough observations, otherwise a
// TPE proposal fit on the highest adequately-observed fidelity.
func (st *bohbState) propose(o Oracle, space Space, g *rng.RNG) fl.HParams {
	if g.Bool(st.cfg.RandomFraction) {
		return sampleConfig(o, space, g.Split("random"))
	}
	obs := st.modelObservations()
	if len(obs) < st.cfg.MinPoints {
		return sampleConfig(o, space, g.Split("fallback"))
	}
	return st.tpe.propose(obs, o, space, g.Split("tpe"))
}

// modelObservations returns the observations at the largest fidelity with at
// least MinPoints of them (BOHB's model-selection rule).
func (st *bohbState) modelObservations() []scoredConfig {
	fidelities := make([]int, 0, len(st.byFidelity))
	for f := range st.byFidelity {
		fidelities = append(fidelities, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(fidelities)))
	for _, f := range fidelities {
		if len(st.byFidelity[f]) >= st.cfg.MinPoints {
			return st.byFidelity[f]
		}
	}
	return nil
}
