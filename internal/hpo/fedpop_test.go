package hpo

import (
	"reflect"
	"testing"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

func TestFedPopDeterministic(t *testing.T) {
	run := func(seed uint64) *History {
		o := newTestOracle(0.05)
		return FedPop{}.Run(o, DefaultSpace(), smallSettings(), rng.New(seed))
	}
	if !reflect.DeepEqual(run(4), run(4)) {
		t.Fatal("same seed produced different histories")
	}
	if reflect.DeepEqual(run(4), run(5)) {
		t.Fatal("different seeds produced identical histories")
	}
}

func TestFedPopRespectsBudget(t *testing.T) {
	o := newTestOracle(0.05)
	s := smallSettings()
	h := FedPop{}.Run(o, DefaultSpace(), s, rng.New(2))
	if got := h.RoundsConsumed(); got > s.Budget.TotalRounds {
		t.Fatalf("consumed %d rounds, budget %d", got, s.Budget.TotalRounds)
	}
	if len(h.Observations) == 0 {
		t.Fatal("no observations")
	}
}

func TestFedPopReachesFullFidelity(t *testing.T) {
	o := newTestOracle(0.05)
	s := smallSettings()
	s.Budget.TotalRounds = 100 * s.Budget.MaxPerConfig // ample budget
	h := FedPop{}.Run(o, DefaultSpace(), s, rng.New(3))
	rec, ok := h.Recommend()
	if !ok {
		t.Fatal("no recommendation")
	}
	if rec.Rounds != o.maxRounds {
		t.Fatalf("recommendation at %d rounds, want max %d", rec.Rounds, o.maxRounds)
	}
}

func TestFedPopPoolMembership(t *testing.T) {
	o := newTestOracle(0.05)
	o.pool = DefaultSpace().SampleN(24, rng.New(11))
	member := map[[2]float64]bool{}
	for _, c := range o.pool {
		member[[2]float64{c.ServerLR, c.ClientLR}] = true
	}
	h := FedPop{Population: 6}.Run(o, DefaultSpace(), smallSettings(), rng.New(6))
	for i, obs := range h.Observations {
		if !member[[2]float64{obs.Config.ServerLR, obs.Config.ClientLR}] {
			t.Fatalf("observation %d config %+v is not a pool member", i, obs.Config)
		}
	}
}

func TestFedPopEvolvesPopulation(t *testing.T) {
	// With several generations the explore step must introduce configs
	// beyond the initial population.
	o := newTestOracle(0.05)
	s := smallSettings()
	s.Budget.TotalRounds = 100 * s.Budget.MaxPerConfig
	h := FedPop{Population: 8, R0: o.maxRounds / 27}.Run(o, DefaultSpace(), s, rng.New(9))
	distinct := map[float64]bool{}
	for _, obs := range h.Observations {
		distinct[obs.Config.ServerLR] = true
	}
	if len(distinct) <= 8 {
		t.Fatalf("only %d distinct configs observed; explore step appears inert", len(distinct))
	}
}

func TestNearestConfigExactAndTies(t *testing.T) {
	space := DefaultSpace()
	pool := space.SampleN(12, rng.New(21))
	for i, c := range pool {
		if got := NearestConfig(pool, c, space); pool[got] != c {
			t.Fatalf("pool member %d snapped to %d (different config)", i, got)
		}
	}
	// Duplicate members: ties break to the lowest index.
	pool2 := append(append([]fl.HParams(nil), pool...), pool[3])
	if got := NearestConfig(pool2, pool[3], space); got != 3 {
		t.Fatalf("tie broke to %d, want 3", got)
	}
}
