package hpo

import (
	"strings"
	"testing"
)

func TestMethodsListing(t *testing.T) {
	want := []string{"bohb", "fedpop", "grid", "hb", "noisybo", "reeval", "rs", "sha", "tpe"}
	got := Methods()
	if len(got) != len(want) {
		t.Fatalf("Methods() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Methods() = %v, want %v", got, want)
		}
	}
}

func TestMethodByNameResolvesEveryListing(t *testing.T) {
	for _, name := range Methods() {
		m, err := MethodByName(name)
		if err != nil {
			t.Fatalf("MethodByName(%q): %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("MethodByName(%q) returned method with empty display name", name)
		}
	}
}

func TestMethodByNameAliasesAndCase(t *testing.T) {
	cases := map[string]string{
		"RS":        "RS",
		"random":    "RS",
		"Hyperband": "HB",
		"hb":        "HB",
		" bohb ":    "BOHB",
	}
	for in, want := range cases {
		m, err := MethodByName(in)
		if err != nil {
			t.Fatalf("MethodByName(%q): %v", in, err)
		}
		if m.Name() != want {
			t.Errorf("MethodByName(%q).Name() = %q, want %q", in, m.Name(), want)
		}
	}
}

func TestMethodByNameUnknownNamesChoices(t *testing.T) {
	_, err := MethodByName("gradient-descent")
	if err == nil {
		t.Fatal("expected error for unknown method")
	}
	for _, name := range Methods() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid choice %q", err, name)
		}
	}
}

func TestMethodInfos(t *testing.T) {
	infos := MethodInfos()
	names := Methods()
	if len(infos) != len(names) {
		t.Fatalf("MethodInfos() has %d entries, Methods() %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("MethodInfos()[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Display == "" || info.Description == "" {
			t.Errorf("MethodInfos()[%d] (%q) missing display or description", i, info.Name)
		}
		for _, a := range info.Aliases {
			canon, err := CanonicalMethodName(a)
			if err != nil || canon != info.Name {
				t.Errorf("alias %q of %q resolves to (%q, %v)", a, info.Name, canon, err)
			}
		}
	}
}

func TestCanonicalMethodName(t *testing.T) {
	cases := map[string]string{
		"random": "rs", "RS": "rs", "hyperband": "hb", "HB": "hb", "tpe": "tpe",
	}
	for in, want := range cases {
		got, err := CanonicalMethodName(in)
		if err != nil {
			t.Fatalf("CanonicalMethodName(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("CanonicalMethodName(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := CanonicalMethodName("nope"); err == nil {
		t.Fatal("expected error for unknown method")
	}
}
