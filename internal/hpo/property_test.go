package hpo

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

// Property: RecommendAt is monotone in budget — growing the budget never
// yields a recommendation with a worse (higher) observed error at the same
// or lower fidelity.
func TestRecommendMonotoneProperty(t *testing.T) {
	g := rng.New(300)
	f := func(seed uint8) bool {
		n := int(seed%20) + 1
		h := &History{}
		cum := 0
		fidelities := []int{5, 15, 45, 135, 405}
		for i := 0; i < n; i++ {
			cum += 5 + g.IntN(400)
			h.Add(Observation{
				Rounds:    fidelities[g.IntN(len(fidelities))],
				Observed:  g.Float64(),
				True:      g.Float64(),
				CumRounds: cum,
			})
		}
		prevRounds, prevObserved := -1, math.Inf(1)
		for b := 0; b <= cum; b += 50 {
			rec, ok := h.RecommendAt(b)
			if !ok {
				continue
			}
			if rec.Rounds < prevRounds {
				return false // fidelity can only grow with budget
			}
			if rec.Rounds == prevRounds && rec.Observed > prevObserved+1e-12 {
				return false // at equal fidelity, observed error can only improve
			}
			prevRounds, prevObserved = rec.Rounds, rec.Observed
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every rung ladder starts at r0 (clamped to >= 1), ends exactly
// at maxR, and grows by factor eta between interior rungs.
func TestRungLadderStructureProperty(t *testing.T) {
	f := func(rawR0, rawMax, rawEta uint8) bool {
		eta := int(rawEta%3) + 2
		maxR := int(rawMax)%400 + 1
		r0 := int(rawR0)%maxR + 1
		ladder := rungLadder(r0, maxR, eta)
		if len(ladder) == 0 || ladder[len(ladder)-1] != maxR {
			return false
		}
		for i := 0; i < len(ladder)-1; i++ {
			if ladder[i] >= ladder[i+1] {
				return false
			}
			if i+2 < len(ladder) && ladder[i+1] != ladder[i]*eta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: RungRounds output is sorted, deduplicated, within [1, maxR],
// and always contains maxR.
func TestRungRoundsProperty(t *testing.T) {
	f := func(rawMax, rawEta, rawLevels uint8) bool {
		maxR := int(rawMax)%1000 + 1
		eta := int(rawEta%4) + 2
		levels := int(rawLevels%6) + 1
		rs := RungRounds(maxR, eta, levels)
		if len(rs) == 0 || rs[len(rs)-1] != maxR {
			return false
		}
		seen := map[int]bool{}
		prev := 0
		for _, r := range rs {
			if r < 1 || r > maxR || r <= prev || seen[r] {
				return false
			}
			seen[r] = true
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the Parzen density is strictly positive inside the space for
// any observation set, so TPE's log-ratio score never degenerates.
func TestParzenPositiveDensityProperty(t *testing.T) {
	g := rng.New(301)
	space := DefaultSpace()
	f := func(seed uint8) bool {
		n := int(seed%10) + 1
		configs := space.SampleN(n, g.Splitf("cfgs-%d", seed))
		p := newParzen(space, configs)
		probe := space.Sample(g.Splitf("probe-%d", seed))
		ld := p.logDensity(probe)
		return !math.IsNaN(ld) && !math.IsInf(ld, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Hyperband's bracket plan always allocates non-increasing config
// counts and non-decreasing r0 across brackets, with the last bracket at
// full fidelity.
func TestHyperbandPlanStructureProperty(t *testing.T) {
	f := func(rawMax, rawBrackets uint8) bool {
		maxR := int(rawMax)%800 + 5
		s := DefaultSettings()
		s.Brackets = int(rawBrackets%6) + 1
		plans := hyperbandPlan(maxR, s)
		if len(plans) != s.Brackets {
			return false
		}
		for i := 0; i < len(plans)-1; i++ {
			if plans[i].n < plans[i+1].n || plans[i].r0 > plans[i+1].r0 {
				return false
			}
		}
		return plans[len(plans)-1].r0 == maxR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
