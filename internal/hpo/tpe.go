package hpo

import (
	"math"
	"sort"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// TPE is the tree-structured Parzen estimator (Bergstra et al., 2011), the
// Bayesian-optimization representative in the study. It models p(θ|y) with
// two densities — ℓ(θ) over the best γ-fraction of observations and g(θ)
// over the rest — and proposes the candidate maximizing ℓ(θ)/g(θ), which is
// equivalent to maximizing expected improvement under the TPE model.
//
// Like the paper's setup, each proposed configuration is trained for the
// full per-config budget and evaluated once; the (noisy) observed errors are
// what the densities are fit on — TPE has no mechanism to account for
// evaluation noise, which is exactly the failure mode the study measures.
type TPE struct {
	// Gamma is the good/bad split quantile (default 0.25).
	Gamma float64
	// NStartup is the number of initial random configurations (default 4).
	NStartup int
	// NCandidates is the number of EI candidates scored per iteration
	// (default 24).
	NCandidates int
}

// Name implements Method.
func (TPE) Name() string { return "TPE" }

// Run implements Method.
func (t TPE) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	t = t.normalize()
	h := &History{MethodName: "TPE"}
	maxR := perConfigRounds(o, s)
	k := s.Budget.K
	h.Grow(k)
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: k}

	gSub := rng.New(0) // reseeded per iteration; same streams as Splitf
	var observed []scoredConfig
	cum := 0
	for i := 0; i < k; i++ {
		if cum+maxR > s.Budget.TotalRounds {
			break
		}
		var cfg fl.HParams
		if i < t.NStartup || len(observed) < t.NStartup {
			g.SplitIntInto(gSub, "startup-", i)
			cfg = sampleConfig(o, space, gSub)
		} else {
			g.SplitIntInto(gSub, "propose-", i)
			cfg = t.propose(observed, o, space, gSub)
		}
		cum += maxR
		obs := o.Evaluate(cfg, maxR, tpeEvalIDs.ID(i))
		if dpp.Private() {
			obs = dpp.Release(obs, o.SampleSize(), g.Splitf("dp-%d", i))
		}
		h.Add(Observation{
			Config: cfg, Rounds: maxR, Observed: obs,
			True: o.TrueError(cfg, maxR), CumRounds: cum,
		})
		observed = append(observed, scoredConfig{cfg: cfg, err: obs})
	}
	return h
}

func (t TPE) normalize() TPE {
	if t.Gamma <= 0 || t.Gamma >= 1 {
		t.Gamma = 0.25
	}
	if t.NStartup < 1 {
		t.NStartup = 4
	}
	if t.NCandidates < 1 {
		t.NCandidates = 24
	}
	return t
}

type scoredConfig struct {
	cfg fl.HParams
	err float64
}

// propose builds ℓ and g densities from the observations and returns the
// candidate with the highest ℓ/g among NCandidates draws (from ℓ in
// continuous mode, from the pool in bank mode).
func (t TPE) propose(obs []scoredConfig, o Oracle, space Space, g *rng.RNG) fl.HParams {
	sorted := append([]scoredConfig(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].err < sorted[j].err })
	nGood := int(t.Gamma * float64(len(sorted)))
	if nGood < 1 {
		nGood = 1
	}
	good := newParzen(space, configsOf(sorted[:nGood]))
	bad := newParzen(space, configsOf(sorted[nGood:]))

	var candidates []fl.HParams
	if pool := o.Pool(); len(pool) > 0 {
		for i := 0; i < t.NCandidates; i++ {
			candidates = append(candidates, pool[g.IntN(len(pool))])
		}
	} else {
		for i := 0; i < t.NCandidates; i++ {
			candidates = append(candidates, good.sample(g.Splitf("cand-%d", i)))
		}
	}
	best := candidates[0]
	bestScore := math.Inf(-1)
	for _, c := range candidates {
		score := good.logDensity(c) - bad.logDensity(c)
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	return best
}

func configsOf(sc []scoredConfig) []fl.HParams {
	out := make([]fl.HParams, len(sc))
	for i, s := range sc {
		out[i] = s.cfg
	}
	return out
}

// parzen is the per-dimension kernel density model of one TPE side. The
// five continuous dimensions (log server lr, β1, β2, log client lr,
// momentum) use Gaussian kernels mixed with a uniform prior; batch size
// uses a smoothed categorical.
type parzen struct {
	space Space
	dims  [5]kde1d
	batch catKDE
}

func newParzen(space Space, configs []fl.HParams) *parzen {
	n := len(configs)
	cols := make([][]float64, 5)
	for d := range cols {
		cols[d] = make([]float64, n)
	}
	batchCounts := make([]float64, len(space.BatchSizes))
	for i, c := range configs {
		v := configVec(c)
		for d := 0; d < 5; d++ {
			cols[d][i] = v[d]
		}
		batchCounts[batchIndex(space, c.BatchSize)]++
	}
	lo, hi := spaceBounds(space)
	p := &parzen{space: space}
	for d := 0; d < 5; d++ {
		p.dims[d] = newKDE(cols[d], lo[d], hi[d])
	}
	p.batch = catKDE{counts: batchCounts}
	return p
}

// configVec maps a configuration to the 5 continuous coordinates.
func configVec(c fl.HParams) [5]float64 {
	return [5]float64{
		math.Log10(c.ServerLR),
		c.Beta1,
		c.Beta2,
		math.Log10(c.ClientLR),
		c.ClientMomentum,
	}
}

func spaceBounds(s Space) (lo, hi [5]float64) {
	lo = [5]float64{math.Log10(s.ServerLRMin), s.Beta1Min, s.Beta2Min, math.Log10(s.ClientLRMin), s.MomentumMin}
	hi = [5]float64{math.Log10(s.ServerLRMax), s.Beta1Max, s.Beta2Max, math.Log10(s.ClientLRMax), s.MomentumMax}
	return lo, hi
}

// batchIndex returns the index of the nearest batch size in the space.
func batchIndex(s Space, b int) int {
	best, bestDiff := 0, math.MaxInt
	for i, v := range s.BatchSizes {
		d := v - b
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// logDensity returns the model's log density at the configuration.
func (p *parzen) logDensity(c fl.HParams) float64 {
	v := configVec(c)
	sum := 0.0
	for d := 0; d < 5; d++ {
		sum += p.dims[d].logDensity(v[d])
	}
	sum += math.Log(p.batch.prob(batchIndex(p.space, c.BatchSize)))
	return sum
}

// sample draws a configuration from the model (used to generate EI
// candidates in continuous mode).
func (p *parzen) sample(g *rng.RNG) fl.HParams {
	var v [5]float64
	for d := 0; d < 5; d++ {
		v[d] = p.dims[d].sample(g.Splitf("dim-%d", d))
	}
	bs := p.space.BatchSizes[p.batch.sample(g.Split("batch"))]
	return fl.HParams{
		ServerLR:       math.Pow(10, v[0]),
		Beta1:          v[1],
		Beta2:          v[2],
		LRDecay:        p.space.LRDecay,
		ClientLR:       math.Pow(10, v[3]),
		ClientMomentum: v[4],
		WeightDecay:    p.space.WeightDecay,
		BatchSize:      bs,
		Epochs:         p.space.Epochs,
	}
}

// kde1d is a 1-D Gaussian kernel density with a uniform prior component over
// [lo, hi], following the Parzen construction of Bergstra et al. (2011).
type kde1d struct {
	lo, hi  float64
	centers []float64
	bw      float64
}

func newKDE(values []float64, lo, hi float64) kde1d {
	k := kde1d{lo: lo, hi: hi, centers: values}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	n := float64(len(values))
	if n == 0 {
		k.bw = span
		return k
	}
	// Scott's rule with floors to keep densities proper on tiny samples.
	sd := stddev(values)
	bw := 1.06 * sd * math.Pow(n, -0.2)
	if bw < span/50 {
		bw = span / 50
	}
	if bw > span {
		bw = span
	}
	k.bw = bw
	return k
}

// logDensity mixes the uniform prior with the kernels:
// p(x) = (prior + Σ_i N(x; c_i, bw)) / (n + 1).
func (k kde1d) logDensity(x float64) float64 {
	span := k.hi - k.lo
	if span <= 0 {
		span = 1
	}
	// The uniform prior is supported only on [lo, hi].
	prior := 0.0
	if x >= k.lo && x <= k.hi {
		prior = 1 / span
	}
	sum := prior
	for _, c := range k.centers {
		z := (x - c) / k.bw
		sum += math.Exp(-0.5*z*z) / (k.bw * math.Sqrt(2*math.Pi))
	}
	return math.Log(sum / float64(len(k.centers)+1))
}

// sample draws from the mixture and clamps to the range.
func (k kde1d) sample(g *rng.RNG) float64 {
	i := g.IntN(len(k.centers) + 1)
	var x float64
	if i == len(k.centers) {
		x = g.Uniform(k.lo, k.hi) // prior component
	} else {
		x = g.Normal(k.centers[i], k.bw)
	}
	if x < k.lo {
		x = k.lo
	}
	if x > k.hi {
		x = k.hi
	}
	return x
}

// catKDE is a Laplace-smoothed categorical density.
type catKDE struct {
	counts []float64
}

func (c catKDE) prob(i int) float64 {
	total := 0.0
	for _, v := range c.counts {
		total += v
	}
	return (c.counts[i] + 1) / (total + float64(len(c.counts)))
}

func (c catKDE) sample(g *rng.RNG) int {
	w := make([]float64, len(c.counts))
	for i := range w {
		w[i] = c.counts[i] + 1
	}
	return g.Categorical(w)
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
