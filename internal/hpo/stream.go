package hpo

import (
	"iter"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// errEvalStreamClosed is the sentinel panic that unwinds a method whose
// stream is closed before it finishes.
type errEvalStreamClosed struct{}

// EvalStream is the synchronous, single-goroutine form of the AskTellDriver
// coroutine inversion: the method runs as an iter.Pull coroutine against a
// proxy oracle whose Evaluate yields an EvalRequest and suspends. Next
// resumes the method until its next ask (or completion); Tell supplies the
// answer the suspended Evaluate call will return.
//
// Where AskTellDriver pays two channel handshakes — four scheduler wakeups —
// per evaluation to serve concurrent session callers, EvalStream switches
// directly between caller and method on one goroutine, which is what the
// block scheduler needs to drive hundreds of trials at sub-microsecond
// per-eval cost. The protocol and semantics are AskTellDriver's: the same
// EvalRequest type, sequential IDs from 0, one pending ask at a time, and
// answering every ask with the real oracle's Evaluate result reproduces
// m.Run(o, space, s, g) observation for observation. Non-Evaluate oracle
// calls (TrueError, Pool, …) forward synchronously to o.
//
// An EvalStream belongs to one goroutine; distinct streams are independent.
type EvalStream struct {
	next    func() (EvalRequest, bool)
	stop    func()
	hist    *History
	reply   float64
	nextID  int
	pending bool // an ask is outstanding and unanswered
	done    bool

	// A method that calls EvaluateAll against the proxy suspends once with a
	// whole EvalBatch; Next/Tell then serve the batch one flattened ask at a
	// time without resuming the coroutine until every item is answered. The
	// consumer observes the identical ask sequence either way — batching
	// only removes coroutine switches.
	batch    *EvalBatch
	batchPos int
}

// NewEvalStream prepares m.Run(o, space, s, g) for stepwise execution. The
// method does not start running until the first Next call.
func NewEvalStream(m Method, o Oracle, space Space, s Settings, g *rng.RNG) *EvalStream {
	st := &EvalStream{}
	st.next, st.stop = iter.Pull(func(yield func(EvalRequest) bool) {
		defer func() {
			// Close unwinds the coroutine with the sentinel; swallow it so
			// stop() returns cleanly. Genuine method panics propagate to
			// whichever Next/Close call resumed the coroutine, exactly as a
			// direct m.Run would panic on the caller's goroutine.
			if r := recover(); r != nil {
				if _, closed := r.(errEvalStreamClosed); !closed {
					panic(r)
				}
			}
		}()
		st.hist = m.Run(&streamOracle{o: o, st: st, yield: yield}, space, s, g)
	})
	return st
}

// streamOracle is the proxy handed to the driven method: Evaluate suspends
// the coroutine, everything else forwards.
type streamOracle struct {
	o     Oracle
	st    *EvalStream
	yield func(EvalRequest) bool
}

func (p *streamOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	st := p.st
	id := st.nextID
	st.nextID++
	if !p.yield(EvalRequest{ID: id, Config: cfg, PoolIndex: -1, Rounds: rounds, EvalID: evalID}) {
		panic(errEvalStreamClosed{})
	}
	return st.reply
}

// EvaluateBatch suspends once for the whole batch; EvalStream.Next flattens
// it into the usual one-ask-at-a-time protocol on the consumer side, so the
// only observable difference from looping Evaluate is one coroutine
// round-trip instead of len(b.Configs).
func (p *streamOracle) EvaluateBatch(b *EvalBatch) {
	if len(b.Configs) == 0 {
		return
	}
	st := p.st
	st.batch, st.batchPos = b, 0
	if !p.yield(EvalRequest{}) {
		panic(errEvalStreamClosed{})
	}
	st.batch = nil
}
func (p *streamOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	return p.o.TrueError(cfg, rounds)
}
func (p *streamOracle) SampleSize() int    { return p.o.SampleSize() }
func (p *streamOracle) Pool() []fl.HParams { return p.o.Pool() }
func (p *streamOracle) MaxRounds() int     { return p.o.MaxRounds() }

// Next resumes the method until it asks for an evaluation or finishes. ok is
// false when the method has returned (History is then valid). The previous
// ask must have been answered with Tell; requests carry PoolIndex -1 (the
// block scheduler resolves configs against the bank's own index instead).
func (s *EvalStream) Next() (EvalRequest, bool) {
	if s.done {
		return EvalRequest{}, false
	}
	if s.pending {
		panic("hpo: EvalStream.Next with an unanswered ask (call Tell first)")
	}
	if s.batch != nil {
		if s.batchPos < len(s.batch.Configs) {
			return s.serveBatchItem()
		}
		s.batch = nil // batch fully answered: resume the coroutine below
	}
	req, ok := s.next()
	if !ok {
		s.done = true
		s.stop()
		return EvalRequest{}, false
	}
	if s.batch != nil {
		// The coroutine suspended with a whole EvalBatch (the yielded request
		// is a placeholder): serve its first item instead.
		return s.serveBatchItem()
	}
	s.pending = true
	return req, true
}

func (s *EvalStream) serveBatchItem() (EvalRequest, bool) {
	b, i := s.batch, s.batchPos
	id := s.nextID
	s.nextID++
	s.pending = true
	return EvalRequest{ID: id, Config: b.Configs[i], PoolIndex: -1, Rounds: b.RoundsAt(i), EvalID: b.EvalIDAt(i)}, true
}

// Batch exposes the method's whole pending batch when the ask the last Next
// returned is its first item, and nil otherwise. A batch-aware consumer (the
// block scheduler) answers wholesale — fill every Out element, call
// FinishBatch instead of Tell, and Next as usual — skipping the per-item
// flattening; the method observes the identical answers either way.
func (s *EvalStream) Batch() *EvalBatch {
	if s.batch != nil && s.pending && s.batchPos == 0 {
		return s.batch
	}
	return nil
}

// FinishBatch marks every item of the pending batch answered (the caller
// filled Out directly). The ask IDs the flattened items would have consumed
// are still burned, so the ID sequence matches the per-item protocol.
func (s *EvalStream) FinishBatch() {
	if s.batch == nil || !s.pending || s.batchPos != 0 {
		panic("hpo: FinishBatch without a whole pending batch")
	}
	s.nextID += len(s.batch.Configs) - 1 // item 0's ID was assigned by Next
	s.batchPos = len(s.batch.Configs)
	s.pending = false
}

// Tell records the observed error the suspended Evaluate call returns when
// Next resumes the method.
func (s *EvalStream) Tell(observed float64) {
	if !s.pending {
		panic("hpo: EvalStream.Tell with no pending ask")
	}
	if s.batch != nil {
		s.batch.Out[s.batchPos] = observed
		s.batchPos++
	} else {
		s.reply = observed
	}
	s.pending = false
}

// Done reports whether the method has finished.
func (s *EvalStream) Done() bool { return s.done }

// History returns the finished method's observation log (nil until Done).
func (s *EvalStream) History() *History { return s.hist }

// Close releases the stream. A suspended method unwinds without completing;
// Close after completion (or before the first Next) is a no-op. Callers that
// abandon a stream mid-run must Close it so the coroutine is collected.
func (s *EvalStream) Close() {
	if s.done {
		return
	}
	s.done = true
	s.pending = false
	s.stop()
}
