package hpo

import (
	"math"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// NoisyBO is a noise-aware Bayesian optimization baseline for the federated
// setting — the direction the paper's §6 proposes ("Noisy BO": knowledge
// gradient and noisy expected improvement, whose surrogate must tolerate the
// high noise levels of federated evaluation, but whose acquisition cost must
// stay small enough for a server-side loop).
//
// This implementation keeps a conjugate Normal posterior over each
// candidate's true error from repeated noisy evaluations and allocates
// evaluation rounds by Thompson sampling: at each step it samples a
// plausible error for every trained candidate from its posterior and
// re-evaluates the apparent best. Posterior averaging makes the final
// selection robust to evaluation noise at the cost of extra evaluation
// rounds — the trade the paper identifies. Training rounds are charged once
// per candidate (checkpoint reuse), matching the paper's accounting, while
// the number of evaluation calls is capped at EvalBudget.
type NoisyBO struct {
	// PoolSize is the number of candidates drawn up-front in continuous
	// mode (bank mode uses the oracle pool, subsampled to K candidates).
	PoolSize int
	// EvalBudget caps total evaluation calls (default 3×K).
	EvalBudget int
	// ObsNoise is the assumed evaluation-noise standard deviation of the
	// likelihood (default 0.1; the posterior contracts as 1/√n regardless).
	ObsNoise float64
	// PriorMean and PriorStd parameterize the error prior (defaults 0.7,
	// 0.3 — errors live in [0, 1] and most configs are bad).
	PriorMean, PriorStd float64
}

// Name implements Method.
func (NoisyBO) Name() string { return "NoisyBO" }

// Run implements Method.
func (m NoisyBO) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	m = m.normalize(s)
	h := &History{MethodName: m.Name()}
	maxR := perConfigRounds(o, s)

	// Candidate set: as many configs as the training budget affords.
	nCandidates := s.Budget.K
	if nCandidates > s.Budget.TotalRounds/maxR {
		nCandidates = s.Budget.TotalRounds / maxR
	}
	if nCandidates < 1 {
		return h
	}
	cands := make([]fl.HParams, nCandidates)
	gSub := rng.New(0)
	for i := range cands {
		g.SplitIntInto(gSub, "cand-", i)
		cands[i] = sampleConfig(o, space, gSub)
	}
	h.Grow(m.EvalBudget)

	// Posterior state per candidate.
	sum := make([]float64, nCandidates)
	count := make([]int, nCandidates)
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: m.EvalBudget}

	// All candidates train to full fidelity once (cost charged here);
	// evaluations then sharpen the posterior.
	cum := 0
	post := func(i int) (mean, std float64) {
		// Conjugate Normal update with known observation noise.
		tau0 := 1 / (m.PriorStd * m.PriorStd)
		tauL := float64(count[i]) / (m.ObsNoise * m.ObsNoise)
		mean = (m.PriorMean*tau0 + sum[i]/(m.ObsNoise*m.ObsNoise)) / (tau0 + tauL)
		std = math.Sqrt(1 / (tau0 + tauL))
		return mean, std
	}
	observe := func(i int, evalID string, dpPrefix string, dpN int) {
		obs := o.Evaluate(cands[i], maxR, evalID)
		if dpp.Private() {
			obs = dpp.Release(obs, o.SampleSize(), g.Splitf(dpPrefix, dpN))
		}
		sum[i] += obs
		count[i]++
		mean, _ := post(i)
		h.Add(Observation{
			Config: cands[i], Rounds: maxR,
			// Observed carries the posterior mean so that RecommendAt picks
			// the averaged (noise-robust) winner.
			Observed:  mean,
			True:      o.TrueError(cands[i], maxR),
			CumRounds: cum,
		})
	}

	evals := 0
	for i := range cands {
		if cum+maxR > s.Budget.TotalRounds || evals >= m.EvalBudget {
			break
		}
		cum += maxR
		observe(i, nboInitIDs.ID(i), "dp-init-%d", i)
		evals++
	}

	// Thompson-sampled re-evaluation of the apparent best.
	for ; evals < m.EvalBudget; evals++ {
		best, bestDraw := -1, math.Inf(1)
		for i := range cands {
			if count[i] == 0 {
				continue
			}
			mean, std := post(i)
			g.SplitInt2Into(gSub, "ts-", evals, "-", i)
			draw := gSub.Normal(mean, std)
			if draw < bestDraw {
				best, bestDraw = i, draw
			}
		}
		if best < 0 {
			break
		}
		observe(best, nboTSIDs.ID(evals), "dp-ts-%d", evals)
	}
	return h
}

func (m NoisyBO) normalize(s Settings) NoisyBO {
	if m.PoolSize < 1 {
		m.PoolSize = s.Budget.K
	}
	if m.EvalBudget < 1 {
		m.EvalBudget = 3 * s.Budget.K
	}
	if m.ObsNoise <= 0 {
		m.ObsNoise = 0.1
	}
	if m.PriorStd <= 0 {
		m.PriorStd = 0.3
	}
	if m.PriorMean == 0 {
		m.PriorMean = 0.7
	}
	return m
}
