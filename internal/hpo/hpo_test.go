package hpo

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// testOracle is a synthetic response surface: configurations closer to the
// optimum (server lr 1e-3, client lr 1e-1) have lower error, error shrinks
// with training rounds, and Evaluate adds subsampling-like noise keyed by
// (evalID, config) so repeated evaluations differ.
type testOracle struct {
	pool       []fl.HParams
	noise      float64
	sampleSize int
	maxRounds  int
	seed       uint64
	evalCalls  int
}

func (o *testOracle) base(cfg fl.HParams) float64 {
	d := math.Abs(math.Log10(cfg.ServerLR)+3)/6 + math.Abs(math.Log10(cfg.ClientLR)+1)/6
	e := 0.08 + 0.5*d
	if e > 0.95 {
		e = 0.95
	}
	return e
}

func (o *testOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	if rounds > o.maxRounds {
		rounds = o.maxRounds
	}
	b := o.base(cfg)
	frac := float64(rounds) / float64(o.maxRounds)
	return b + (0.9-b)*(1-frac)
}

func (o *testOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	o.evalCalls++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%v|%v|%d", o.seed, evalID, cfg.ServerLR, cfg.ClientLR, cfg.BatchSize)
	g := rng.New(h.Sum64())
	return o.TrueError(cfg, rounds) + g.Normal(0, o.noise)
}

func (o *testOracle) SampleSize() int    { return o.sampleSize }
func (o *testOracle) Pool() []fl.HParams { return o.pool }
func (o *testOracle) MaxRounds() int     { return o.maxRounds }

func newTestOracle(noise float64) *testOracle {
	return &testOracle{noise: noise, sampleSize: 10, maxRounds: 405, seed: 1}
}

func smallSettings() Settings {
	return Settings{Budget: Budget{TotalRounds: 6480, MaxPerConfig: 405, K: 16}, Epsilon: math.Inf(1), Eta: 3, Brackets: 5}
}

// --- Space tests ---

func TestDefaultSpaceValid(t *testing.T) {
	if err := DefaultSpace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSampleInBounds(t *testing.T) {
	s := DefaultSpace()
	g := rng.New(1)
	f := func(seed uint8) bool {
		cfg := s.Sample(g.Splitf("s%d", seed))
		return s.Contains(cfg) && cfg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSpaceSampleFixedFields(t *testing.T) {
	cfg := DefaultSpace().Sample(rng.New(2))
	if cfg.LRDecay != 0.9999 || cfg.WeightDecay != 5e-5 || cfg.Epochs != 1 {
		t.Errorf("fixed fields = %+v", cfg)
	}
}

func TestSpaceLogUniformLR(t *testing.T) {
	// Roughly half the server-lr samples should fall below the geometric
	// midpoint sqrt(1e-6 * 1e-1) ≈ 10^-3.5.
	s := DefaultSpace()
	g := rng.New(3)
	below := 0
	const n = 4000
	mid := math.Pow(10, -3.5)
	for i := 0; i < n; i++ {
		if s.Sample(g.Splitf("c%d", i)).ServerLR < mid {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("fraction below geometric mid = %.3f", frac)
	}
}

func TestWithServerLRDecades(t *testing.T) {
	s := DefaultSpace().WithServerLRDecades(1)
	if math.Abs(math.Log10(s.ServerLRMin)-(-4.5)) > 1e-9 || math.Abs(math.Log10(s.ServerLRMax)-(-3.5)) > 1e-9 {
		t.Errorf("1 decade = [%g, %g]", s.ServerLRMin, s.ServerLRMax)
	}
	s4 := DefaultSpace().WithServerLRDecades(4)
	if math.Abs(math.Log10(s4.ServerLRMin)-(-6)) > 1e-9 || math.Abs(math.Log10(s4.ServerLRMax)-(-2)) > 1e-9 {
		t.Errorf("4 decades = [%g, %g]", s4.ServerLRMin, s4.ServerLRMax)
	}
}

func TestSpaceValidateErrors(t *testing.T) {
	bad := DefaultSpace()
	bad.ServerLRMin = 0
	if bad.Validate() == nil {
		t.Error("zero lr min accepted")
	}
	bad2 := DefaultSpace()
	bad2.BatchSizes = nil
	if bad2.Validate() == nil {
		t.Error("empty batch sizes accepted")
	}
	bad3 := DefaultSpace()
	bad3.Beta1Max = 1.0
	if bad3.Validate() == nil {
		t.Error("beta1 = 1 accepted")
	}
}

func TestGridSize(t *testing.T) {
	s := DefaultSpace()
	grid := s.Grid(2)
	want := 2 * 2 * 2 * 2 * 2 * len(s.BatchSizes)
	if len(grid) != want {
		t.Errorf("grid size = %d, want %d", len(grid), want)
	}
	for _, cfg := range grid {
		if !s.Contains(cfg) {
			t.Fatalf("grid point %+v outside space", cfg)
		}
	}
	if len(s.Grid(1)) != len(s.BatchSizes) {
		t.Error("1-point grid should be midpoints x batch sizes")
	}
}

func TestRungRounds(t *testing.T) {
	got := RungRounds(405, 3, 5)
	want := []int{5, 15, 45, 135, 405}
	if len(got) != len(want) {
		t.Fatalf("rungs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rungs = %v, want %v", got, want)
		}
	}
	// Dedup for tiny maxR.
	small := RungRounds(4, 3, 5)
	if small[0] != 1 || small[len(small)-1] != 4 {
		t.Errorf("small rungs = %v", small)
	}
}

// --- History tests ---

func TestRecommendPrefersFidelityThenError(t *testing.T) {
	h := &History{}
	h.Add(Observation{Rounds: 405, Observed: 0.5, True: 0.5, CumRounds: 405})
	h.Add(Observation{Rounds: 45, Observed: 0.1, True: 0.1, CumRounds: 450})
	h.Add(Observation{Rounds: 405, Observed: 0.4, True: 0.45, CumRounds: 855})
	rec, ok := h.Recommend()
	if !ok || rec.Observed != 0.4 {
		t.Errorf("recommendation = %+v", rec)
	}
	// At budget 405 only the first observation is available.
	rec405, _ := h.RecommendAt(405)
	if rec405.Observed != 0.5 {
		t.Errorf("budget-405 recommendation = %+v", rec405)
	}
}

func TestTrueErrorCurveBeforeFirstObservation(t *testing.T) {
	h := &History{}
	h.Add(Observation{Rounds: 405, Observed: 0.3, True: 0.35, CumRounds: 405})
	curve := h.TrueErrorCurve([]int{100, 405, 800})
	if curve[0] != 0.35 || curve[1] != 0.35 || curve[2] != 0.35 {
		t.Errorf("curve = %v", curve)
	}
	empty := &History{}
	if c := empty.TrueErrorCurve([]int{10}); c[0] != 1 {
		t.Errorf("empty history curve = %v", c)
	}
}

// --- Random search ---

func TestRandomSearchBudget(t *testing.T) {
	o := newTestOracle(0)
	h := RandomSearch{}.Run(o, DefaultSpace(), smallSettings(), rng.New(5))
	if len(h.Observations) != 16 {
		t.Fatalf("observations = %d, want 16", len(h.Observations))
	}
	if h.RoundsConsumed() != 6480 {
		t.Errorf("rounds = %d, want 6480", h.RoundsConsumed())
	}
	for _, obs := range h.Observations {
		if obs.Rounds != 405 {
			t.Errorf("RS observation at fidelity %d", obs.Rounds)
		}
	}
}

func TestRandomSearchFindsGoodConfigNoiseless(t *testing.T) {
	o := newTestOracle(0)
	h := RandomSearch{}.Run(o, DefaultSpace(), smallSettings(), rng.New(6))
	rec, _ := h.Recommend()
	// Noiseless recommendation must be the true argmin of the sampled set.
	best := math.Inf(1)
	for _, obs := range h.Observations {
		if obs.True < best {
			best = obs.True
		}
	}
	if rec.True != best {
		t.Errorf("recommended %.4f, sampled best %.4f", rec.True, best)
	}
}

func TestRandomSearchNoiseDegradesSelection(t *testing.T) {
	// Regret (chosen true error - best sampled true error) should grow with
	// evaluation noise — the core phenomenon of the paper.
	regret := func(noise float64) float64 {
		total := 0.0
		for seed := uint64(0); seed < 20; seed++ {
			o := newTestOracle(noise)
			o.seed = seed
			h := RandomSearch{}.Run(o, DefaultSpace(), smallSettings(), rng.New(100+seed))
			rec, _ := h.Recommend()
			best := math.Inf(1)
			for _, obs := range h.Observations {
				if obs.True < best {
					best = obs.True
				}
			}
			total += rec.True - best
		}
		return total / 20
	}
	if r0, r1 := regret(0), regret(0.3); r1 <= r0 {
		t.Errorf("noisy regret %.4f should exceed noiseless %.4f", r1, r0)
	}
}

func TestRandomSearchPoolMode(t *testing.T) {
	pool := DefaultSpace().SampleN(8, rng.New(7))
	o := newTestOracle(0)
	o.pool = pool
	h := RandomSearch{}.Run(o, DefaultSpace(), smallSettings(), rng.New(8))
	inPool := func(c fl.HParams) bool {
		for _, p := range pool {
			if p == c {
				return true
			}
		}
		return false
	}
	for _, obs := range h.Observations {
		if !inPool(obs.Config) {
			t.Fatal("RS in pool mode proposed a non-pool config")
		}
	}
}

func TestRandomSearchDeterminism(t *testing.T) {
	run := func() float64 {
		o := newTestOracle(0.1)
		h := RandomSearch{}.Run(o, DefaultSpace(), smallSettings(), rng.New(9))
		rec, _ := h.Recommend()
		return rec.True
	}
	if run() != run() {
		t.Error("RS not deterministic under a fixed seed")
	}
}

func TestRandomSearchDPChangesDecisions(t *testing.T) {
	s := smallSettings()
	s.Epsilon = 0.01 // absurdly strict: noise dominates
	diffs := 0
	for seed := uint64(0); seed < 10; seed++ {
		o1 := newTestOracle(0)
		o1.seed = seed
		clean := RandomSearch{}.Run(o1, DefaultSpace(), smallSettings(), rng.New(200+seed))
		o2 := newTestOracle(0)
		o2.seed = seed
		noisy := RandomSearch{}.Run(o2, DefaultSpace(), s, rng.New(200+seed))
		r1, _ := clean.Recommend()
		r2, _ := noisy.Recommend()
		if r1.Config != r2.Config {
			diffs++
		}
	}
	if diffs < 5 {
		t.Errorf("strict DP changed the recommendation only %d/10 times", diffs)
	}
}

// --- Grid search ---

func TestGridSearchRuns(t *testing.T) {
	o := newTestOracle(0)
	h := GridSearch{PointsPerDim: 2}.Run(o, DefaultSpace(), smallSettings(), rng.New(10))
	if len(h.Observations) != 16 { // truncated by K
		t.Errorf("grid observations = %d", len(h.Observations))
	}
	if h.RoundsConsumed() > 6480 {
		t.Error("grid exceeded budget")
	}
}

// --- TPE ---

func TestTPERunsFullBudget(t *testing.T) {
	o := newTestOracle(0.02)
	h := TPE{}.Run(o, DefaultSpace(), smallSettings(), rng.New(11))
	if len(h.Observations) != 16 {
		t.Fatalf("TPE observations = %d", len(h.Observations))
	}
	if h.RoundsConsumed() != 6480 {
		t.Errorf("TPE rounds = %d", h.RoundsConsumed())
	}
}

func TestTPEOutperformsRandomOnSmoothSurface(t *testing.T) {
	// With low noise, TPE's mean true error over its proposals should beat
	// RS's over many seeds (it concentrates samples near the optimum).
	meanErr := func(m Method) float64 {
		total := 0.0
		for seed := uint64(0); seed < 15; seed++ {
			o := newTestOracle(0.01)
			o.seed = seed
			h := m.Run(o, DefaultSpace(), smallSettings(), rng.New(300+seed))
			rec, _ := h.Recommend()
			total += rec.True
		}
		return total / 15
	}
	rs, tpe := meanErr(RandomSearch{}), meanErr(TPE{})
	if tpe > rs+0.02 {
		t.Errorf("TPE mean %.4f worse than RS mean %.4f on a smooth surface", tpe, rs)
	}
}

func TestTPEPoolMode(t *testing.T) {
	pool := DefaultSpace().SampleN(32, rng.New(12))
	o := newTestOracle(0.02)
	o.pool = pool
	h := TPE{}.Run(o, DefaultSpace(), smallSettings(), rng.New(13))
	inPool := func(c fl.HParams) bool {
		for _, p := range pool {
			if p == c {
				return true
			}
		}
		return false
	}
	for _, obs := range h.Observations {
		if !inPool(obs.Config) {
			t.Fatal("TPE in pool mode proposed a non-pool config")
		}
	}
}

func TestKDEDensityIntegratesToOne(t *testing.T) {
	k := newKDE([]float64{-2, 0, 1.5}, -5, 5)
	integral := 0.0
	const steps = 4000
	for i := 0; i < steps; i++ {
		x := -8.0 + 16.0*float64(i)/steps
		integral += math.Exp(k.logDensity(x)) * 16.0 / steps
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral = %.4f", integral)
	}
}

func TestKDESampleInBounds(t *testing.T) {
	k := newKDE([]float64{0.1, 0.8}, 0, 1)
	g := rng.New(14)
	for i := 0; i < 500; i++ {
		x := k.sample(g.Splitf("s%d", i))
		if x < 0 || x > 1 {
			t.Fatalf("KDE sample %g out of bounds", x)
		}
	}
}

func TestCatKDEProbsSumToOne(t *testing.T) {
	c := catKDE{counts: []float64{3, 0, 1}}
	sum := 0.0
	for i := range c.counts {
		sum += c.prob(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("cat probs sum to %g", sum)
	}
	if c.prob(0) <= c.prob(1) {
		t.Error("higher count should mean higher probability")
	}
}

// --- SHA / Hyperband ---

func TestSHABudgetAccounting(t *testing.T) {
	o := newTestOracle(0)
	s := smallSettings()
	s.Budget.TotalRounds = 100000 // no truncation
	h := SuccessiveHalving{N: 81, R0: 5}.Run(o, DefaultSpace(), s, rng.New(15))
	// Incremental cost: 81*5 + 27*10 + 9*30 + 3*90 + 1*270 = 1485.
	if h.RoundsConsumed() != 1485 {
		t.Errorf("SHA rounds = %d, want 1485", h.RoundsConsumed())
	}
	// Observation counts per rung: 81+27+9+3+1 = 121.
	if len(h.Observations) != 121 {
		t.Errorf("SHA observations = %d, want 121", len(h.Observations))
	}
	rec, _ := h.Recommend()
	if rec.Rounds != 405 {
		t.Errorf("SHA recommendation at fidelity %d", rec.Rounds)
	}
}

func TestSHAKeepsBestNoiseless(t *testing.T) {
	o := newTestOracle(0)
	s := smallSettings()
	s.Budget.TotalRounds = 100000
	h := SuccessiveHalving{N: 27, R0: 15}.Run(o, DefaultSpace(), s, rng.New(16))
	rec, _ := h.Recommend()
	// The winner must be among the best few of the initial 27 by true error.
	var initials []float64
	for _, obs := range h.Observations {
		if obs.Rounds == 15 {
			initials = append(initials, o.base(obs.Config))
		}
	}
	better := 0
	for _, b := range initials {
		if b < o.base(rec.Config)-1e-12 {
			better++
		}
	}
	if better > 3 {
		t.Errorf("SHA winner ranked %d/27 by base error; expected near-best", better+1)
	}
}

func TestSHATruncatesAtBudget(t *testing.T) {
	o := newTestOracle(0)
	s := smallSettings()
	s.Budget.TotalRounds = 500 // only the first rung of N=81 fits (405)
	h := SuccessiveHalving{N: 81, R0: 5}.Run(o, DefaultSpace(), s, rng.New(17))
	if h.RoundsConsumed() > 500 {
		t.Errorf("SHA exceeded budget: %d", h.RoundsConsumed())
	}
	if len(h.Observations) != 81 {
		t.Errorf("expected exactly the first rung (81 obs), got %d", len(h.Observations))
	}
}

func TestHyperbandPlan(t *testing.T) {
	plans := hyperbandPlan(405, smallSettings())
	wantN := []int{81, 34, 15, 8, 5}
	wantR0 := []int{5, 15, 45, 135, 405}
	if len(plans) != 5 {
		t.Fatalf("plans = %d", len(plans))
	}
	for i, p := range plans {
		if p.n != wantN[i] || p.r0 != wantR0[i] {
			t.Errorf("bracket %d = {n: %d, r0: %d}, want {%d, %d}", i, p.n, p.r0, wantN[i], wantR0[i])
		}
	}
}

func TestHyperbandRespectsBudget(t *testing.T) {
	o := newTestOracle(0.02)
	h := Hyperband{}.Run(o, DefaultSpace(), smallSettings(), rng.New(18))
	if h.RoundsConsumed() > 6480 {
		t.Errorf("HB consumed %d > 6480", h.RoundsConsumed())
	}
	if len(h.Observations) == 0 {
		t.Fatal("HB produced no observations")
	}
	// Multiple fidelities must appear.
	fids := map[int]bool{}
	for _, obs := range h.Observations {
		fids[obs.Rounds] = true
	}
	if len(fids) < 3 {
		t.Errorf("HB used only fidelities %v", fids)
	}
}

func TestHyperbandNoiselessQuality(t *testing.T) {
	o := newTestOracle(0)
	h := Hyperband{}.Run(o, DefaultSpace(), smallSettings(), rng.New(19))
	rec, _ := h.Recommend()
	if rec.True > 0.35 {
		t.Errorf("noiseless HB recommendation true error %.3f too high", rec.True)
	}
}

func TestBOHBRuns(t *testing.T) {
	o := newTestOracle(0.02)
	h := BOHB{}.Run(o, DefaultSpace(), smallSettings(), rng.New(20))
	if h.RoundsConsumed() > 6480 {
		t.Errorf("BOHB consumed %d", h.RoundsConsumed())
	}
	if len(h.Observations) == 0 {
		t.Fatal("BOHB produced no observations")
	}
	rec, ok := h.Recommend()
	if !ok || rec.True > 0.5 {
		t.Errorf("BOHB recommendation = %+v", rec)
	}
}

func TestBOHBDeterminism(t *testing.T) {
	run := func() float64 {
		o := newTestOracle(0.05)
		h := BOHB{}.Run(o, DefaultSpace(), smallSettings(), rng.New(21))
		rec, _ := h.Recommend()
		return rec.True
	}
	if run() != run() {
		t.Error("BOHB not deterministic")
	}
}

func TestDPNoiseWrecksHyperband(t *testing.T) {
	// Observation 6: under severe DP, HB's many low-fidelity releases make
	// its selection near-random. Compare mean recommendation quality.
	quality := func(eps float64) float64 {
		total := 0.0
		for seed := uint64(0); seed < 10; seed++ {
			o := newTestOracle(0.01)
			o.seed = seed
			s := smallSettings()
			s.Epsilon = eps
			h := Hyperband{}.Run(o, DefaultSpace(), s, rng.New(400+seed))
			rec, _ := h.Recommend()
			total += rec.True
		}
		return total / 10
	}
	clean := quality(math.Inf(1))
	noisy := quality(0.05)
	if noisy <= clean {
		t.Errorf("strict-DP HB quality %.4f should be worse than clean %.4f", noisy, clean)
	}
}

// --- Proxy ---

// shiftedOracle has its optimum moved away from the base test oracle.
type shiftedOracle struct {
	testOracle
	shift float64
}

func (o *shiftedOracle) base(cfg fl.HParams) float64 {
	d := math.Abs(math.Log10(cfg.ServerLR)+3+o.shift)/6 + math.Abs(math.Log10(cfg.ClientLR)+1+o.shift)/6
	e := 0.08 + 0.5*d
	if e > 0.95 {
		e = 0.95
	}
	return e
}

func TestOneShotProxyRS(t *testing.T) {
	proxy := newTestOracle(0) // same surface: perfect transfer
	target := newTestOracle(0)
	m := OneShotProxyRS{Proxy: proxy}
	h := m.Run(target, DefaultSpace(), smallSettings(), rng.New(22))
	if len(h.Observations) != 5 { // one per rung checkpoint
		t.Errorf("proxy observations = %d", len(h.Observations))
	}
	rec, _ := h.Recommend()
	if rec.Rounds != 405 {
		t.Errorf("proxy recommendation fidelity = %d", rec.Rounds)
	}
	if rec.True > 0.35 {
		t.Errorf("proxy with perfect transfer got %.3f", rec.True)
	}
}

func TestProxyImmuneToTargetNoise(t *testing.T) {
	// Target noise must not change the proxy's chosen config.
	chosen := func(noise float64) fl.HParams {
		proxy := newTestOracle(0)
		target := newTestOracle(noise)
		h := OneShotProxyRS{Proxy: proxy}.Run(target, DefaultSpace(), smallSettings(), rng.New(23))
		rec, _ := h.Recommend()
		return rec.Config
	}
	if chosen(0) != chosen(0.5) {
		t.Error("proxy selection depended on target noise")
	}
}

func TestProxyPanicsWithoutProxy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneShotProxyRS{}.Run(newTestOracle(0), DefaultSpace(), smallSettings(), rng.New(1))
}

// --- Budget / Settings ---

func TestBudgetScaled(t *testing.T) {
	b := DefaultBudget().Scaled(0.2)
	if b.MaxPerConfig != 81 || b.TotalRounds != 1296 || b.K != 16 {
		t.Errorf("scaled = %+v", b)
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{TotalRounds: 10, MaxPerConfig: 20, K: 1}).Validate(); err == nil {
		t.Error("per-config > total accepted")
	}
}

func TestSettingsNormalize(t *testing.T) {
	s := Settings{}.Normalize()
	if !math.IsInf(s.Epsilon, 1) || s.Eta != 3 || s.Brackets != 5 {
		t.Errorf("normalized = %+v", s)
	}
	if s.Budget != DefaultBudget() {
		t.Errorf("budget = %+v", s.Budget)
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]Method{
		"RS": RandomSearch{}, "Grid": GridSearch{}, "TPE": TPE{},
		"SHA": SuccessiveHalving{}, "HB": Hyperband{}, "BOHB": BOHB{},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func rng4() *rng.RNG { return rng.New(4) }

func rngSeed(s uint64) *rng.RNG { return rng.New(s) }
