package hpo

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"noisyeval/internal/rng"
)

// driveToCompletion answers every ask with ans's evaluation until the method
// finishes, returning its history. ans must be a distinct oracle instance
// with the same parameters as the driver's, so external evaluation order
// cannot perturb shared state.
func driveToCompletion(t *testing.T, d *AskTellDriver, ans Oracle) *History {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		req, ok, err := d.Ask(ctx)
		if err != nil {
			t.Fatalf("Ask: %v", err)
		}
		if !ok {
			h, err := d.History()
			if err != nil || h == nil {
				t.Fatalf("History after done: %v (hist=%v)", err, h)
			}
			return h
		}
		obs := ans.Evaluate(req.Config, req.Rounds, req.EvalID)
		if err := d.Tell(req.ID, obs); err != nil {
			t.Fatalf("Tell(%d): %v", req.ID, err)
		}
	}
}

// TestAskTellParity is the inversion contract: driving any method through
// the ask/tell state machine, answering each ask with the real oracle,
// reproduces the direct Run observation for observation.
func TestAskTellParity(t *testing.T) {
	methods := []Method{RandomSearch{}, SuccessiveHalving{}, TPE{}, Hyperband{}, FedPop{}}
	for _, m := range methods {
		t.Run(m.Name(), func(t *testing.T) {
			s := smallSettings()
			space := DefaultSpace()

			direct := newTestOracle(0.05)
			want := m.Run(direct, space, s, rng.New(42))

			o := newTestOracle(0.05)
			ans := newTestOracle(0.05)
			d := NewAskTellDriver(m, o, space, s, rng.New(42))
			defer d.Close()
			got := driveToCompletion(t, d, ans)

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("ask/tell history diverges from direct run:\n direct: %d obs\n driven: %d obs\n first: %+v vs %+v",
					len(want.Observations), len(got.Observations), first(want), first(got))
			}
		})
	}
}

func first(h *History) Observation {
	if len(h.Observations) == 0 {
		return Observation{}
	}
	return h.Observations[0]
}

func TestAskTellPoolIndex(t *testing.T) {
	o := newTestOracle(0.02)
	o.pool = DefaultSpace().SampleN(16, rng.New(9))
	ans := newTestOracle(0.02)
	ans.pool = o.pool
	d := NewAskTellDriver(RandomSearch{}, o, DefaultSpace(), smallSettings(), rng.New(7))
	defer d.Close()

	ctx := context.Background()
	for {
		req, ok, err := d.Ask(ctx)
		if err != nil {
			t.Fatalf("Ask: %v", err)
		}
		if !ok {
			break
		}
		if req.PoolIndex < 0 || req.PoolIndex >= len(o.pool) || o.pool[req.PoolIndex] != req.Config {
			t.Fatalf("ask %d: PoolIndex %d does not locate config %+v", req.ID, req.PoolIndex, req.Config)
		}
		if err := d.Tell(req.ID, ans.Evaluate(req.Config, req.Rounds, req.EvalID)); err != nil {
			t.Fatalf("Tell: %v", err)
		}
	}
}

func TestAskTellIdempotentAskAndTellErrors(t *testing.T) {
	o := newTestOracle(0)
	d := NewAskTellDriver(RandomSearch{}, o, DefaultSpace(), smallSettings(), rng.New(1))
	defer d.Close()

	if err := d.Tell(0, 0.5); err == nil {
		t.Fatal("Tell before any Ask should error")
	}
	ctx := context.Background()
	r1, ok, err := d.Ask(ctx)
	if !ok || err != nil {
		t.Fatalf("Ask: ok=%v err=%v", ok, err)
	}
	r2, ok, err := d.Ask(ctx)
	if !ok || err != nil || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("repeated Ask not idempotent: %+v vs %+v (err=%v)", r1, r2, err)
	}
	if p, ok := d.Pending(); !ok || p.ID != r1.ID {
		t.Fatalf("Pending = %+v, %v; want id %d", p, ok, r1.ID)
	}
	if err := d.Tell(r1.ID+1, 0.5); err == nil {
		t.Fatal("Tell with mismatched id should error")
	}
	if err := d.Tell(r1.ID, 0.5); err != nil {
		t.Fatalf("Tell: %v", err)
	}
	if err := d.Tell(r1.ID, 0.5); err == nil {
		t.Fatal("double Tell should error")
	}
}

func TestAskTellSequentialIDs(t *testing.T) {
	o := newTestOracle(0)
	ans := newTestOracle(0)
	d := NewAskTellDriver(RandomSearch{}, o, DefaultSpace(), smallSettings(), rng.New(3))
	defer d.Close()

	ctx := context.Background()
	want := 0
	for {
		req, ok, err := d.Ask(ctx)
		if err != nil {
			t.Fatalf("Ask: %v", err)
		}
		if !ok {
			break
		}
		if req.ID != want {
			t.Fatalf("ask ID = %d, want %d", req.ID, want)
		}
		want++
		if err := d.Tell(req.ID, ans.Evaluate(req.Config, req.Rounds, req.EvalID)); err != nil {
			t.Fatalf("Tell: %v", err)
		}
	}
	if want == 0 {
		t.Fatal("method asked nothing")
	}
}

func TestAskTellCloseMidRun(t *testing.T) {
	o := newTestOracle(0)
	d := NewAskTellDriver(SuccessiveHalving{}, o, DefaultSpace(), smallSettings(), rng.New(5))

	ctx := context.Background()
	if _, ok, err := d.Ask(ctx); !ok || err != nil {
		t.Fatalf("Ask: ok=%v err=%v", ok, err)
	}
	d.Close() // waits for the method goroutine to unwind
	d.Close() // idempotent

	if _, _, err := d.Ask(ctx); !errors.Is(err, ErrDriverClosed) {
		t.Fatalf("Ask after Close: err=%v, want ErrDriverClosed", err)
	}
	if err := d.Tell(0, 0.1); !errors.Is(err, ErrDriverClosed) {
		t.Fatalf("Tell after Close: err=%v, want ErrDriverClosed", err)
	}
	if h, err := d.History(); h != nil || !errors.Is(err, ErrDriverClosed) {
		t.Fatalf("History after mid-run Close = (%v, %v), want (nil, ErrDriverClosed)", h, err)
	}
}

func TestAskTellAskContextCancel(t *testing.T) {
	o := newTestOracle(0)
	d := NewAskTellDriver(RandomSearch{}, o, DefaultSpace(), smallSettings(), rng.New(8))
	defer d.Close()

	ctx := context.Background()
	req, ok, err := d.Ask(ctx)
	if !ok || err != nil {
		t.Fatalf("Ask: ok=%v err=%v", ok, err)
	}
	if err := d.Tell(req.ID, 0.3); err != nil {
		t.Fatalf("Tell: %v", err)
	}
	// Consume the next pending ask so none is cached, then cancel.
	if _, ok, err := d.Ask(ctx); !ok || err != nil {
		t.Fatalf("Ask: ok=%v err=%v", ok, err)
	}
	if err := d.Tell(1, 0.3); err != nil {
		t.Fatalf("Tell: %v", err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	// With no cached ask, a cancelled context must surface promptly even if
	// the method has more asks queued.
	if _, _, err := d.Ask(cctx); err == nil {
		t.Log("ask raced ahead of cancellation; acceptable but unusual")
	}
}
