package hpo

import (
	"fmt"
	"sort"
	"strings"
)

// methodRegistry maps every accepted method spelling (canonical name plus
// aliases, all lower-case) to a constructor returning a fresh zero-configured
// method value. cmd/fedtune and the noisyevald server share this table, so a
// method registered here is immediately reachable from both entry points.
var methodRegistry = map[string]func() Method{
	"rs":        func() Method { return RandomSearch{} },
	"random":    func() Method { return RandomSearch{} },
	"grid":      func() Method { return GridSearch{} },
	"tpe":       func() Method { return TPE{} },
	"sha":       func() Method { return SuccessiveHalving{} },
	"hb":        func() Method { return Hyperband{} },
	"hyperband": func() Method { return Hyperband{} },
	"bohb":      func() Method { return BOHB{} },
	"reeval":    func() Method { return ResampledRS{} },
	"noisybo":   func() Method { return NoisyBO{} },
}

// methodAliases maps each non-canonical spelling (excluded from Methods())
// to its canonical registry name.
var methodAliases = map[string]string{"random": "rs", "hyperband": "hb"}

// Methods returns the canonical registry names, sorted, for listings and
// error messages ("rs", "grid", "tpe", "sha", "hb", "bohb", "reeval",
// "noisybo").
func Methods() []string {
	out := make([]string, 0, len(methodRegistry))
	for name := range methodRegistry {
		if _, isAlias := methodAliases[name]; !isAlias {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MethodByName resolves a method name (case-insensitive; aliases "random"
// and "hyperband" accepted) to a method value with default configuration.
// Unknown names produce an error naming the valid choices.
func MethodByName(name string) (Method, error) {
	if ctor, ok := methodRegistry[strings.ToLower(strings.TrimSpace(name))]; ok {
		return ctor(), nil
	}
	return nil, fmt.Errorf("hpo: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
}

// CanonicalMethodName resolves a method name or alias to its canonical
// registry spelling (used by content-addressed run keys, where "hb" and
// "hyperband" must hash identically). Unknown names return an error naming
// the valid choices.
func CanonicalMethodName(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := methodAliases[n]; ok {
		n = canon
	}
	if _, ok := methodRegistry[n]; !ok {
		return "", fmt.Errorf("hpo: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
	}
	return n, nil
}
