package hpo

import (
	"fmt"
	"sort"
	"strings"
)

// methodEntry is one registered tuning method: a constructor returning a
// fresh zero-configured value plus the listing metadata GET /v1/methods
// serves (display name, aliases, description, settings hints).
type methodEntry struct {
	ctor        func() Method
	aliases     []string
	description string
	// settings maps knob names (lower-case, dotted for nested Settings
	// fields) to one-line hints about how the method consumes them.
	settings map[string]string
}

// methodRegistry maps each canonical method name (lower-case) to its entry.
// cmd/fedtune and the noisyevald server (both /v1/runs and /v1/sessions)
// share this table, so a method registered here is immediately reachable
// from every entry point.
var methodRegistry = map[string]methodEntry{
	"rs": {
		ctor:        func() Method { return RandomSearch{} },
		aliases:     []string{"random"},
		description: "Random search: K iid configurations at full fidelity, best by observed error (Algorithms 1-2).",
		settings: map[string]string{
			"budget.k":       "configurations sampled (paper: 16)",
			"budget.per_cfg": "training rounds per configuration (paper: 405)",
			"epsilon":        "per-release Laplace privacy budget (0/inf = non-private)",
		},
	},
	"grid": {
		ctor:        func() Method { return GridSearch{} },
		description: "Grid search over the space (or the bank pool), full fidelity, budget-truncated.",
		settings: map[string]string{
			"budget.k": "maximum grid points evaluated",
		},
	},
	"tpe": {
		ctor:        func() Method { return TPE{} },
		description: "Tree-structured Parzen estimator (Bergstra et al., 2011) over noisy releases.",
		settings: map[string]string{
			"budget.k": "configurations proposed",
			"epsilon":  "per-release Laplace privacy budget",
		},
	},
	"sha": {
		ctor:        func() Method { return SuccessiveHalving{} },
		description: "Successive halving (Li et al., 2017): one bracket, eliminate by noisy rung scores.",
		settings: map[string]string{
			"eta":     "elimination factor between rungs (paper: 3)",
			"epsilon": "one-shot top-k privacy budget across rungs",
		},
	},
	"hb": {
		ctor:        func() Method { return Hyperband{} },
		aliases:     []string{"hyperband"},
		description: "Hyperband: SHA brackets sweeping the exploration/exploitation trade-off.",
		settings: map[string]string{
			"eta":      "elimination factor (paper: 3)",
			"brackets": "bracket count (paper: 5)",
			"epsilon":  "one-shot top-k privacy budget across all rungs",
		},
	},
	"bohb": {
		ctor:        func() Method { return BOHB{} },
		description: "BOHB (Falkner et al., 2018): Hyperband with TPE-modelled bracket proposals.",
		settings: map[string]string{
			"eta":      "elimination factor",
			"brackets": "bracket count",
			"epsilon":  "one-shot top-k privacy budget",
		},
	},
	"reeval": {
		ctor:        func() Method { return ResampledRS{} },
		description: "Re-evaluation-averaged random search: each candidate scored by the mean of repeated noisy evaluations.",
		settings: map[string]string{
			"budget.k": "configurations sampled (evaluation repeats share it)",
			"epsilon":  "privacy budget split across repeats",
		},
	},
	"noisybo": {
		ctor:        func() Method { return NoisyBO{} },
		description: "Noise-aware Bayesian optimization over the bank pool with an explicit observation-noise model.",
		settings: map[string]string{
			"budget.k": "configurations proposed",
			"epsilon":  "per-release Laplace privacy budget",
		},
	},
	"fedpop": {
		ctor:        func() Method { return FedPop{} },
		description: "FedPop population-based tuning (Chen et al., 2023): evolve a population along the fidelity ladder, replacing noisy losers with perturbed survivors.",
		settings: map[string]string{
			"eta":     "fidelity ladder growth factor between generations",
			"epsilon": "one-shot top-k privacy budget across generations",
		},
	},
}

// methodAliases maps each non-canonical spelling (excluded from Methods())
// to its canonical registry name; built from the registry entries.
var methodAliases = buildAliases()

func buildAliases() map[string]string {
	out := map[string]string{}
	for name, e := range methodRegistry {
		for _, a := range e.aliases {
			out[a] = name
		}
	}
	return out
}

// Methods returns the canonical registry names, sorted, for listings and
// error messages ("bohb", "fedpop", "grid", "hb", "noisybo", "reeval", "rs",
// "sha", "tpe").
func Methods() []string {
	out := make([]string, 0, len(methodRegistry))
	for name := range methodRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MethodInfo describes one registered method for API listings
// (GET /v1/methods): canonical name, the method's display name, accepted
// aliases, and per-settings hints.
type MethodInfo struct {
	Name        string            `json:"name"`
	Display     string            `json:"display"`
	Aliases     []string          `json:"aliases,omitempty"`
	Description string            `json:"description"`
	Settings    map[string]string `json:"settings,omitempty"`
}

// MethodInfos returns the full method listing, sorted by canonical name.
func MethodInfos() []MethodInfo {
	out := make([]MethodInfo, 0, len(methodRegistry))
	for name, e := range methodRegistry {
		aliases := append([]string(nil), e.aliases...)
		sort.Strings(aliases)
		out = append(out, MethodInfo{
			Name:        name,
			Display:     e.ctor().Name(),
			Aliases:     aliases,
			Description: e.description,
			Settings:    e.settings,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MethodByName resolves a method name (case-insensitive; aliases such as
// "random" and "hyperband" accepted) to a method value with default
// configuration. Unknown names produce an error naming the valid choices.
func MethodByName(name string) (Method, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := methodAliases[n]; ok {
		n = canon
	}
	if e, ok := methodRegistry[n]; ok {
		return e.ctor(), nil
	}
	return nil, fmt.Errorf("hpo: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
}

// CanonicalMethodName resolves a method name or alias to its canonical
// registry spelling (used by content-addressed run keys, where "hb" and
// "hyperband" must hash identically). Unknown names return an error naming
// the valid choices.
func CanonicalMethodName(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := methodAliases[n]; ok {
		n = canon
	}
	if _, ok := methodRegistry[n]; !ok {
		return "", fmt.Errorf("hpo: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
	}
	return n, nil
}
