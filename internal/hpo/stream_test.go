package hpo

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"noisyeval/internal/rng"
)

// drainStream answers every ask with ans's evaluation until the method
// finishes, returning its history.
func drainStream(t *testing.T, st *EvalStream, ans Oracle) *History {
	t.Helper()
	for {
		req, ok := st.Next()
		if !ok {
			if !st.Done() || st.History() == nil {
				t.Fatal("stream finished without a history")
			}
			return st.History()
		}
		st.Tell(ans.Evaluate(req.Config, req.Rounds, req.EvalID))
	}
}

// TestEvalStreamParity is the synchronous inversion contract: stepping any
// method through an EvalStream, answering each ask with the real oracle,
// reproduces the direct Run observation for observation.
func TestEvalStreamParity(t *testing.T) {
	methods := []Method{RandomSearch{}, GridSearch{}, SuccessiveHalving{}, TPE{}, Hyperband{}, FedPop{}, NoisyBO{}, ResampledRS{}}
	for _, m := range methods {
		t.Run(m.Name(), func(t *testing.T) {
			s := smallSettings()
			space := DefaultSpace()

			direct := newTestOracle(0.05)
			want := m.Run(direct, space, s, rng.New(42))

			st := NewEvalStream(m, newTestOracle(0.05), space, s, rng.New(42))
			defer st.Close()
			got := drainStream(t, st, newTestOracle(0.05))

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("stream history diverges from direct run: %d vs %d obs", len(want.Observations), len(got.Observations))
			}
		})
	}
}

// TestEvalStreamSequentialIDs pins the AskTellDriver-compatible protocol:
// IDs count up from 0 and every request carries PoolIndex -1.
func TestEvalStreamSequentialIDs(t *testing.T) {
	o := newTestOracle(0.01)
	st := NewEvalStream(RandomSearch{}, o, DefaultSpace(), smallSettings(), rng.New(7))
	defer st.Close()
	want := 0
	for {
		req, ok := st.Next()
		if !ok {
			break
		}
		if req.ID != want {
			t.Fatalf("ask ID = %d, want %d", req.ID, want)
		}
		if req.PoolIndex != -1 {
			t.Fatalf("ask PoolIndex = %d, want -1", req.PoolIndex)
		}
		want++
		st.Tell(0.5)
	}
	if want == 0 {
		t.Fatal("method never asked")
	}
}

// TestEvalStreamCloseMidRun proves an abandoned stream unwinds cleanly: no
// history, no panic escaping Close, and further Next calls report done.
func TestEvalStreamCloseMidRun(t *testing.T) {
	st := NewEvalStream(RandomSearch{}, newTestOracle(0.01), DefaultSpace(), smallSettings(), rng.New(7))
	if _, ok := st.Next(); !ok {
		t.Fatal("expected a first ask")
	}
	st.Tell(0.5)
	st.Close()
	if st.History() != nil {
		t.Fatal("closed mid-run stream should have no history")
	}
	if _, ok := st.Next(); ok {
		t.Fatal("Next after Close should report done")
	}
}

// TestEvalStreamPropagatesMethodPanic pins panic transparency: a method
// panic surfaces at the Next call that resumed it, like a direct Run would.
func TestEvalStreamPropagatesMethodPanic(t *testing.T) {
	st := NewEvalStream(panickyMethod{}, newTestOracle(0.01), DefaultSpace(), smallSettings(), rng.New(7))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected the method panic to propagate out of Next")
		}
	}()
	st.Next()
}

type panickyMethod struct{}

func (panickyMethod) Name() string { return "panicky" }
func (panickyMethod) Run(Oracle, Space, Settings, *rng.RNG) *History {
	panic("boom")
}

// TestIDCacheMatchesSprintf pins the interned evalID strings byte-equal to
// the legacy fmt.Sprintf derivation, across growth boundaries and under
// concurrent access.
func TestIDCacheMatchesSprintf(t *testing.T) {
	c := NewIDCache("rs-eval-")
	for _, n := range []int{0, 1, 7, 63, 64, 65, 128, 4095, -3} {
		want := fmt.Sprintf("rs-eval-%d", n)
		if got := c.ID(n); got != want {
			t.Fatalf("ID(%d) = %q, want %q", n, got, want)
		}
	}
	// Interning: repeated lookups return the identical string header.
	if a, b := c.ID(42), c.ID(42); a != b {
		t.Fatal("repeated ID lookups disagree")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				if got := c.ID(n); got != fmt.Sprintf("rs-eval-%d", n) {
					t.Errorf("concurrent ID(%d) = %q", n, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
