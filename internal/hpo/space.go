// Package hpo implements the hyperparameter tuning methods compared in the
// study: random search and grid search (classical baselines), the
// tree-structured Parzen estimator (TPE; Bergstra et al., 2011), successive
// halving and Hyperband (Li et al., 2017), BOHB (Falkner et al., 2018), and
// the paper's one-shot proxy random search. Methods run against an Oracle
// (live federated training or a pre-trained config bank) and privatize their
// releases per §3.3 of the paper.
package hpo

import (
	"fmt"
	"math"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// Space is the hyperparameter search space of Appendix B. Learning rates are
// log-uniform; moments and momentum are uniform; batch size is categorical.
// LRDecay, WeightDecay, and Epochs are fixed (not searched).
type Space struct {
	ServerLRMin, ServerLRMax float64 // log-uniform, default [1e-6, 1e-1]
	Beta1Min, Beta1Max       float64 // uniform, default [0, 0.9]
	Beta2Min, Beta2Max       float64 // uniform, default [0, 0.999]
	ClientLRMin, ClientLRMax float64 // log-uniform, default [1e-6, 1]
	MomentumMin, MomentumMax float64 // uniform, default [0, 0.9]
	BatchSizes               []int   // default {32, 64, 128}

	LRDecay     float64 // fixed 0.9999
	WeightDecay float64 // fixed 5e-5
	Epochs      int     // fixed 1
}

// DefaultSpace returns the paper's search space (Appendix B).
func DefaultSpace() Space {
	return Space{
		ServerLRMin: 1e-6, ServerLRMax: 1e-1,
		Beta1Min: 0, Beta1Max: 0.9,
		Beta2Min: 0, Beta2Max: 0.999,
		ClientLRMin: 1e-6, ClientLRMax: 1,
		MomentumMin: 0, MomentumMax: 0.9,
		BatchSizes:  []int{32, 64, 128},
		LRDecay:     0.9999,
		WeightDecay: 5e-5,
		Epochs:      1,
	}
}

// WithServerLRDecades returns a copy whose server-lr range is the nested
// interval of the Appendix C (Figure 13) search-space-width experiment:
// [10^(-4-d/2), 10^(-4+d/2)] for d decades, matching the paper's endpoints
// (d=1 gives [1e-4.5, 1e-3.5]; d=4 gives [1e-6, 1e-2]).
func (s Space) WithServerLRDecades(decades float64) Space {
	if decades <= 0 {
		panic(fmt.Sprintf("hpo: decades must be positive, got %g", decades))
	}
	center := -4.0
	s.ServerLRMin = math.Pow(10, center-decades/2)
	s.ServerLRMax = math.Pow(10, center+decades/2)
	return s
}

// Validate checks bounds.
func (s Space) Validate() error {
	if s.ServerLRMin <= 0 || s.ServerLRMax <= s.ServerLRMin {
		return fmt.Errorf("hpo: server lr range [%g, %g] invalid", s.ServerLRMin, s.ServerLRMax)
	}
	if s.ClientLRMin <= 0 || s.ClientLRMax <= s.ClientLRMin {
		return fmt.Errorf("hpo: client lr range [%g, %g] invalid", s.ClientLRMin, s.ClientLRMax)
	}
	if s.Beta1Min < 0 || s.Beta1Max >= 1 || s.Beta1Max < s.Beta1Min {
		return fmt.Errorf("hpo: beta1 range [%g, %g] invalid", s.Beta1Min, s.Beta1Max)
	}
	if s.Beta2Min < 0 || s.Beta2Max >= 1 || s.Beta2Max < s.Beta2Min {
		return fmt.Errorf("hpo: beta2 range [%g, %g] invalid", s.Beta2Min, s.Beta2Max)
	}
	if s.MomentumMin < 0 || s.MomentumMax >= 1 || s.MomentumMax < s.MomentumMin {
		return fmt.Errorf("hpo: momentum range [%g, %g] invalid", s.MomentumMin, s.MomentumMax)
	}
	if len(s.BatchSizes) == 0 {
		return fmt.Errorf("hpo: no batch sizes")
	}
	for _, b := range s.BatchSizes {
		if b < 1 {
			return fmt.Errorf("hpo: batch size %d invalid", b)
		}
	}
	return nil
}

// Sample draws one configuration uniformly from the space (log-uniform for
// learning rates) — the candidate generator of random search (Algorithm 1/2).
func (s Space) Sample(g *rng.RNG) fl.HParams {
	return fl.HParams{
		ServerLR:       g.LogUniform(s.ServerLRMin, s.ServerLRMax),
		Beta1:          g.Uniform(s.Beta1Min, s.Beta1Max),
		Beta2:          g.Uniform(s.Beta2Min, s.Beta2Max),
		LRDecay:        s.LRDecay,
		ClientLR:       g.LogUniform(s.ClientLRMin, s.ClientLRMax),
		ClientMomentum: g.Uniform(s.MomentumMin, s.MomentumMax),
		WeightDecay:    s.WeightDecay,
		BatchSize:      s.BatchSizes[g.IntN(len(s.BatchSizes))],
		Epochs:         s.Epochs,
	}
}

// SampleN draws n iid configurations.
func (s Space) SampleN(n int, g *rng.RNG) []fl.HParams {
	out := make([]fl.HParams, n)
	for i := range out {
		out[i] = s.Sample(g.Splitf("sample-%d", i))
	}
	return out
}

// Contains reports whether h lies inside the space's tuned-parameter ranges.
func (s Space) Contains(h fl.HParams) bool {
	if h.ServerLR < s.ServerLRMin || h.ServerLR > s.ServerLRMax {
		return false
	}
	if h.ClientLR < s.ClientLRMin || h.ClientLR > s.ClientLRMax {
		return false
	}
	if h.Beta1 < s.Beta1Min || h.Beta1 > s.Beta1Max {
		return false
	}
	if h.Beta2 < s.Beta2Min || h.Beta2 > s.Beta2Max {
		return false
	}
	if h.ClientMomentum < s.MomentumMin || h.ClientMomentum > s.MomentumMax {
		return false
	}
	for _, b := range s.BatchSizes {
		if h.BatchSize == b {
			return true
		}
	}
	return false
}

// Grid returns a grid over the space with pointsPerDim points along each
// continuous dimension (learning rates spaced log-uniformly) crossed with
// every batch size. Used by grid search.
func (s Space) Grid(pointsPerDim int) []fl.HParams {
	if pointsPerDim < 1 {
		panic(fmt.Sprintf("hpo: pointsPerDim %d must be >= 1", pointsPerDim))
	}
	logSpan := func(lo, hi float64) []float64 {
		pts := spanPoints(math.Log(lo), math.Log(hi), pointsPerDim, true)
		if len(pts) > 1 {
			// Pin the endpoints exactly: exp(log(x)) round-off could push
			// them just outside the space.
			pts[0], pts[len(pts)-1] = lo, hi
		}
		return pts
	}
	linSpan := func(lo, hi float64) []float64 { return spanPoints(lo, hi, pointsPerDim, false) }

	serverLRs := logSpan(s.ServerLRMin, s.ServerLRMax)
	beta1s := linSpan(s.Beta1Min, s.Beta1Max)
	beta2s := linSpan(s.Beta2Min, s.Beta2Max)
	clientLRs := logSpan(s.ClientLRMin, s.ClientLRMax)
	momenta := linSpan(s.MomentumMin, s.MomentumMax)

	var out []fl.HParams
	for _, slr := range serverLRs {
		for _, b1 := range beta1s {
			for _, b2 := range beta2s {
				for _, clr := range clientLRs {
					for _, mom := range momenta {
						for _, bs := range s.BatchSizes {
							out = append(out, fl.HParams{
								ServerLR: slr, Beta1: b1, Beta2: b2, LRDecay: s.LRDecay,
								ClientLR: clr, ClientMomentum: mom,
								WeightDecay: s.WeightDecay, BatchSize: bs, Epochs: s.Epochs,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// spanPoints returns n points spanning [lo, hi]; exp=true exponentiates
// (inputs are logs). A single point sits at the midpoint.
func spanPoints(lo, hi float64, n int, exp bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		var v float64
		if n == 1 {
			v = (lo + hi) / 2
		} else {
			v = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		if exp {
			v = math.Exp(v)
		}
		out[i] = v
	}
	return out
}
