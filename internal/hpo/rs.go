package hpo

import (
	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// RandomSearch is the classical baseline (Bergstra & Bengio, 2012;
// Algorithms 1–2 of the paper): sample K configurations iid, train each for
// the full per-config budget, evaluate once, and return the best by observed
// error. Under DP, each of the K releases is perturbed with
// Lap(K/(ε·|S|)) per basic composition.
type RandomSearch struct{}

// Name implements Method.
func (RandomSearch) Name() string { return "RS" }

// Run implements Method.
func (RandomSearch) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	h := &History{MethodName: "RS"}
	maxR := perConfigRounds(o, s)
	k := s.Budget.K
	h.Grow(k)
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: k}
	gSub := rng.New(0) // reseeded per iteration; same streams as Splitf
	// The K draws are iid — no draw depends on an earlier answer — so the
	// asks are sampled first (same per-i RNG streams as the historical
	// interleaved loop) and evaluated as one batch. Each answer is a pure
	// function of (config, rounds, evalID), so the history is bit-identical
	// to evaluating inside the sampling loop.
	cfgs := make([]fl.HParams, 0, k)
	ids := make([]string, 0, k)
	cum := 0
	for i := 0; i < k; i++ {
		if cum+maxR > s.Budget.TotalRounds {
			break
		}
		g.SplitIntInto(gSub, "cfg-", i)
		cfgs = append(cfgs, sampleConfig(o, space, gSub))
		ids = append(ids, rsEvalIDs.ID(i))
		cum += maxR
	}
	batch := EvalBatch{Configs: cfgs, EvalIDs: ids, SameRounds: maxR, Out: make([]float64, len(cfgs))}
	EvaluateAll(o, &batch)
	cum = 0
	for i, cfg := range cfgs {
		cum += maxR
		observed := batch.Out[i]
		if dpp.Private() {
			// Split consumes no parent randomness and a non-private Release
			// is the identity, so skipping both off the private path leaves
			// every stream byte-identical.
			observed = dpp.Release(observed, o.SampleSize(), g.Splitf("dp-%d", i))
		}
		h.Add(Observation{
			Config:    cfg,
			Rounds:    maxR,
			Observed:  observed,
			True:      o.TrueError(cfg, maxR),
			CumRounds: cum,
		})
	}
	return h
}

// GridSearch is the other classical model-free baseline: it walks a fixed
// grid over the space (or the candidate pool in bank mode) and evaluates
// configurations at full fidelity until the budget runs out.
type GridSearch struct {
	// PointsPerDim controls grid resolution in continuous mode (default 2).
	PointsPerDim int
}

// Name implements Method.
func (GridSearch) Name() string { return "Grid" }

// Run implements Method.
func (gs GridSearch) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	h := &History{MethodName: "Grid"}
	maxR := perConfigRounds(o, s)

	grid := o.Pool()
	if len(grid) == 0 {
		pts := gs.PointsPerDim
		if pts < 1 {
			pts = 2
		}
		grid = space.Grid(pts)
	}
	if len(grid) == 0 {
		return h
	}
	k := s.Budget.K
	h.Grow(minInt(k, len(grid)))
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: minInt(k, len(grid))}
	// Grid points are fixed upfront, so the whole walk is one batch (see
	// RandomSearch.Run for the bit-identity argument).
	m := 0
	ids := make([]string, 0, minInt(k, len(grid)))
	cum := 0
	for i := 0; i < len(grid) && i < k; i++ {
		if cum+maxR > s.Budget.TotalRounds {
			break
		}
		ids = append(ids, gridEvalIDs.ID(i))
		cum += maxR
		m++
	}
	batch := EvalBatch{Configs: grid[:m], EvalIDs: ids, SameRounds: maxR, Out: make([]float64, m)}
	EvaluateAll(o, &batch)
	cum = 0
	for i, cfg := range grid[:m] {
		cum += maxR
		observed := batch.Out[i]
		if dpp.Private() {
			observed = dpp.Release(observed, o.SampleSize(), g.Splitf("dp-%d", i))
		}
		h.Add(Observation{
			Config:    cfg,
			Rounds:    maxR,
			Observed:  observed,
			True:      o.TrueError(cfg, maxR),
			CumRounds: cum,
		})
	}
	return h
}

// perConfigRounds caps the per-config budget by the oracle's maximum.
func perConfigRounds(o Oracle, s Settings) int {
	maxR := s.Budget.MaxPerConfig
	if om := o.MaxRounds(); om > 0 && om < maxR {
		maxR = om
	}
	return maxR
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
