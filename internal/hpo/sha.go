package hpo

import (
	"math"
	"strconv"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// shaParams configures one successive-halving bracket.
type shaParams struct {
	r0, maxR   int
	eta        int
	epsilon    float64
	totalRungs int // T across the whole run, for one-shot top-k calibration
	label      string
}

// rungLadder returns the fidelity ladder {r0, r0·η, ..., maxR}.
func rungLadder(r0, maxR, eta int) []int {
	if r0 < 1 {
		r0 = 1
	}
	var out []int
	for r := r0; r < maxR; r *= eta {
		out = append(out, r)
	}
	return append(out, maxR)
}

// runSHA executes one SHA bracket (Li et al., 2017): train all survivors to
// each rung, evaluate them on a shared cohort, and keep the best
// max(⌊n/η⌋, 1) by (privately) noisy score. Under DP the paper's one-shot
// Laplace top-k mechanism (Qiao et al., 2021) perturbs each rung's scores
// with scale 2·T·k_t/(ε·|S|).
//
// Training cost is incremental (checkpoint reuse): advancing a survivor from
// rung r to rung r' charges r'−r rounds. The bracket truncates cleanly when
// the run's total budget cannot cover the next rung. onRung, when non-nil,
// receives each rung's noisy scores (BOHB uses this to update its model).
func runSHA(o Oracle, cfgs []fl.HParams, p shaParams, totalBudget int, cum *int, h *History,
	g *rng.RNG, onRung func(fidelity int, cfgs []fl.HParams, noisy []float64)) {

	survivors := append([]fl.HParams(nil), cfgs...)
	trained := 0
	for rung, r := range rungLadder(p.r0, p.maxR, p.eta) {
		if len(survivors) == 0 {
			return
		}
		cost := (r - trained) * len(survivors)
		if *cum+cost > totalBudget {
			return // budget exhausted; the bracket truncates here
		}
		*cum += cost

		// Shared evaluation cohort for the rung (Figure 2 of the paper); the
		// survivors' evaluations are independent, so the rung is one batch.
		evalID := p.label + "-rung-" + strconv.Itoa(rung)
		errs := make([]float64, len(survivors))
		batch := EvalBatch{Configs: survivors, SameRounds: r, SameEvalID: evalID, Out: errs}
		EvaluateAll(o, &batch)

		// Keep count for this rung's selection.
		k := len(survivors) / p.eta
		if k < 1 || r >= p.maxR {
			k = 1
		}
		scale := dp.TopKScale(p.totalRungs, k, o.SampleSize(), p.epsilon)
		var noiseG *rng.RNG
		if scale > 0 {
			// The split is only derived when noise is actually drawn: Split
			// consumes no parent randomness and OneShotNoisy at scale 0 never
			// touches its RNG, so the non-private stream is unchanged.
			noiseG = g.Splitf("%s-noise-%d", p.label, rung)
		}
		noisy := dp.OneShotNoisy(errs, scale, noiseG)

		h.Grow(len(survivors))
		for i, cfg := range survivors {
			h.Add(Observation{
				Config: cfg, Rounds: r, Observed: noisy[i],
				True: o.TrueError(cfg, r), CumRounds: *cum,
			})
		}
		if onRung != nil {
			onRung(r, survivors, noisy)
		}
		if r >= p.maxR {
			return
		}
		keep := dp.BottomK(noisy, k)
		next := make([]fl.HParams, len(keep))
		for i, idx := range keep {
			next[i] = survivors[idx]
		}
		survivors = next
		trained = r
	}
}

// SuccessiveHalving runs a single SHA bracket as a standalone method: N
// configurations starting from R0 rounds with elimination factor η.
type SuccessiveHalving struct {
	// N is the number of initial configurations (default: enough to fill
	// the total budget, η^(rungs-1) style — see normalize).
	N int
	// R0 is the minimum resource (default MaxPerConfig / η^4).
	R0 int
}

// Name implements Method.
func (SuccessiveHalving) Name() string { return "SHA" }

// Run implements Method.
func (sh SuccessiveHalving) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	h := &History{MethodName: "SHA"}
	maxR := perConfigRounds(o, s)
	r0 := sh.R0
	if r0 < 1 {
		r0 = maxR / pow(s.Eta, 4)
		if r0 < 1 {
			r0 = 1
		}
	}
	n := sh.N
	if n < 1 {
		n = pow(s.Eta, len(rungLadder(r0, maxR, s.Eta))-1)
	}
	cfgs := make([]fl.HParams, n)
	gSub := rng.New(0)
	for i := range cfgs {
		g.SplitIntInto(gSub, "cfg-", i)
		cfgs[i] = sampleConfig(o, space, gSub)
	}
	p := shaParams{
		r0: r0, maxR: maxR, eta: s.Eta,
		epsilon:    s.Epsilon,
		totalRungs: len(rungLadder(r0, maxR, s.Eta)),
		label:      "sha",
	}
	cum := 0
	runSHA(o, cfgs, p, s.Budget.TotalRounds, &cum, h, g, nil)
	return h
}

// Hyperband (Li et al., 2017) wraps SHA in a sweep over exploration/
// exploitation trade-offs: bracket s runs SHA with n_s = ⌈(s_max+1)·η^s /
// (s+1)⌉ configurations from r0 = R/η^s. The paper uses 5 brackets with
// η = 3 and R = 405 rounds; brackets run until the 6480-round budget is
// exhausted.
type Hyperband struct{}

// Name implements Method.
func (Hyperband) Name() string { return "HB" }

// Run implements Method.
func (Hyperband) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	h := &History{MethodName: "HB"}
	runHyperbandLoop(o, space, s, g, h, nil)
	return h
}

// bracketPlan describes one HB bracket.
type bracketPlan struct {
	s, n, r0 int
}

// hyperbandPlan returns the bracket schedule for the settings.
func hyperbandPlan(maxR int, s Settings) []bracketPlan {
	sMax := s.Brackets - 1
	var plans []bracketPlan
	for b := sMax; b >= 0; b-- {
		n := int(math.Ceil(float64(sMax+1) * math.Pow(float64(s.Eta), float64(b)) / float64(b+1)))
		r0 := maxR / pow(s.Eta, b)
		if r0 < 1 {
			r0 = 1
		}
		plans = append(plans, bracketPlan{s: b, n: n, r0: r0})
	}
	return plans
}

// runHyperbandLoop is shared by HB and BOHB; proposeFn, when non-nil,
// generates each bracket's configurations (BOHB's model-based sampling) and
// receives rung feedback through the returned observer.
func runHyperbandLoop(o Oracle, space Space, s Settings, g *rng.RNG, h *History,
	bohb *bohbState) {

	maxR := perConfigRounds(o, s)
	plans := hyperbandPlan(maxR, s)

	// Total rung count across all brackets calibrates one-shot top-k noise.
	totalRungs := 0
	for _, p := range plans {
		totalRungs += len(rungLadder(p.r0, maxR, s.Eta))
	}

	cum := 0
	gSub := rng.New(0)
	for bi, plan := range plans {
		cfgs := make([]fl.HParams, plan.n)
		for i := range cfgs {
			g.SplitInt2Into(gSub, "bracket-", bi, "-cfg-", i)
			if bohb != nil {
				cfgs[i] = bohb.propose(o, space, gSub)
			} else {
				cfgs[i] = sampleConfig(o, space, gSub)
			}
		}
		var onRung func(int, []fl.HParams, []float64)
		if bohb != nil {
			onRung = bohb.observe
		}
		p := shaParams{
			r0: plan.r0, maxR: maxR, eta: s.Eta,
			epsilon:    s.Epsilon,
			totalRungs: totalRungs,
			label:      "hb-bracket-" + strconv.Itoa(bi),
		}
		before := cum
		runSHA(o, cfgs, p, s.Budget.TotalRounds, &cum, h, g.Splitf("bracket-%d", bi), onRung)
		if cum == before {
			return // no budget left for even the first rung
		}
	}
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
