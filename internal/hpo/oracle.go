package hpo

import (
	"fmt"
	"math"
	"sort"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// Oracle is what tuning methods query. Implementations are the live
// federated trainer and the pre-trained config bank (package core).
//
// Evaluate returns the tuner-visible error of a configuration trained to the
// given round: it includes client subsampling, heterogeneity, and biased
// selection noise, but NOT differential-privacy noise — methods apply DP to
// their own releases because the mechanism differs (per-release Laplace for
// RS/TPE, one-shot top-k for rung eliminations).
//
// evalID names the evaluation round; evaluations sharing an evalID observe
// the same sampled client subset (the server evaluates all candidates of a
// round on one cohort, Figure 2 of the paper), while distinct evalIDs draw
// independent cohorts.
type Oracle interface {
	// Evaluate returns the observed (pre-DP) validation error of cfg at the
	// checkpoint nearest to rounds (not exceeding it).
	Evaluate(cfg fl.HParams, rounds int, evalID string) float64
	// TrueError returns the noise-free full weighted validation error of cfg
	// at the checkpoint nearest to rounds. Reporting only; tuners must not
	// use it for decisions.
	TrueError(cfg fl.HParams, rounds int) float64
	// SampleSize returns |S|, the number of clients per evaluation call,
	// used to calibrate DP noise.
	SampleSize() int
	// Pool returns the finite candidate pool when the oracle is bank-backed
	// (methods then propose only pool members), or nil for a continuous
	// space.
	Pool() []fl.HParams
	// MaxRounds returns the highest trainable round per configuration.
	MaxRounds() int
}

// EvalBatch is a set of independent evaluation asks answered together.
// Configs lists the asks; Rounds and EvalIDs give per-ask fidelities and
// evaluation IDs, or — when nil — SameRounds/SameEvalID apply to every ask
// (the shared-cohort rung shape of SHA and FedPop). Out receives the
// observed errors and must be pre-sized to len(Configs).
type EvalBatch struct {
	Configs    []fl.HParams
	Rounds     []int
	EvalIDs    []string
	SameRounds int
	SameEvalID string
	Out        []float64
}

// RoundsAt returns ask i's fidelity.
func (b *EvalBatch) RoundsAt(i int) int {
	if b.Rounds != nil {
		return b.Rounds[i]
	}
	return b.SameRounds
}

// EvalIDAt returns ask i's evaluation ID.
func (b *EvalBatch) EvalIDAt(i int) string {
	if b.EvalIDs != nil {
		return b.EvalIDs[i]
	}
	return b.SameEvalID
}

// BatchOracle is an optional Oracle extension: an oracle that can accept many
// independent asks per suspension implements it to amortize per-ask transfer
// cost (the EvalStream proxy pays one coroutine round-trip per batch instead
// of one per evaluation).
type BatchOracle interface {
	Oracle
	EvaluateBatch(b *EvalBatch)
}

// EvaluateAll answers every ask in b: through the oracle's batch interface
// when it has one, else by looping Evaluate in ask order. Every ask's answer
// is a pure function of (config, rounds, evalID) for the oracles in this
// repository, so the two paths fill Out identically and methods may batch
// independent evaluations without perturbing recorded histories.
func EvaluateAll(o Oracle, b *EvalBatch) {
	if len(b.Out) != len(b.Configs) {
		panic("hpo: EvalBatch.Out not sized to its asks")
	}
	if bo, ok := o.(BatchOracle); ok && len(b.Configs) > 1 {
		bo.EvaluateBatch(b)
		return
	}
	for i, cfg := range b.Configs {
		b.Out[i] = o.Evaluate(cfg, b.RoundsAt(i), b.EvalIDAt(i))
	}
}

// Budget is the tuning resource budget, measured in training rounds as in
// the paper (§3, "Hyperparameters"): 6480 rounds total, at most 405 per
// configuration, K = 16 configurations for RS and TPE.
type Budget struct {
	TotalRounds  int
	MaxPerConfig int
	K            int
}

// DefaultBudget returns the paper's budget.
func DefaultBudget() Budget { return Budget{TotalRounds: 6480, MaxPerConfig: 405, K: 16} }

// Scaled returns the budget scaled by f (for reduced-cost experiments),
// keeping K and preserving TotalRounds = K * MaxPerConfig proportionality.
func (b Budget) Scaled(f float64) Budget {
	if f <= 0 {
		panic(fmt.Sprintf("hpo: budget scale %g must be positive", f))
	}
	mpc := int(float64(b.MaxPerConfig) * f)
	if mpc < 1 {
		mpc = 1
	}
	tot := int(float64(b.TotalRounds) * f)
	if tot < mpc {
		tot = mpc
	}
	return Budget{TotalRounds: tot, MaxPerConfig: mpc, K: b.K}
}

// Validate checks the budget.
func (b Budget) Validate() error {
	if b.TotalRounds < 1 || b.MaxPerConfig < 1 || b.K < 1 {
		return fmt.Errorf("hpo: budget %+v has non-positive fields", b)
	}
	if b.MaxPerConfig > b.TotalRounds {
		return fmt.Errorf("hpo: per-config budget %d exceeds total %d", b.MaxPerConfig, b.TotalRounds)
	}
	return nil
}

// Settings configures a tuning run.
type Settings struct {
	Budget Budget
	// Epsilon is the total DP budget for the run; +Inf (or 0, normalized to
	// +Inf) disables privacy noise.
	Epsilon float64
	// Eta is the SHA/Hyperband elimination factor (paper: 3).
	Eta int
	// Brackets is the number of Hyperband brackets (paper: 5).
	Brackets int
}

// DefaultSettings returns the paper's tuning settings with no privacy.
func DefaultSettings() Settings {
	return Settings{Budget: DefaultBudget(), Epsilon: inf(), Eta: 3, Brackets: 5}
}

// Normalize fills defaults.
func (s Settings) Normalize() Settings {
	if s.Epsilon == 0 {
		s.Epsilon = inf()
	}
	if s.Eta < 2 {
		s.Eta = 3
	}
	if s.Brackets < 1 {
		s.Brackets = 5
	}
	if s.Budget == (Budget{}) {
		s.Budget = DefaultBudget()
	}
	return s
}

// Observation is one tuner-visible evaluation event.
type Observation struct {
	Config fl.HParams
	// Rounds is the fidelity (training rounds) at which the config was
	// observed.
	Rounds int
	// Observed is the error the tuner used for its decision (subsampled,
	// biased, DP-noised as applicable). May fall outside [0, 1] under DP.
	Observed float64
	// True is the noise-free full weighted validation error at the same
	// fidelity (reporting only).
	True float64
	// CumRounds is the total training rounds consumed by the method when
	// this observation became available.
	CumRounds int
}

// History is the ordered log of a tuning run.
type History struct {
	MethodName   string
	Observations []Observation
}

// Add appends an observation.
func (h *History) Add(o Observation) { h.Observations = append(h.Observations, o) }

// Grow ensures capacity for at least n further observations without
// reallocation. Methods call it once up front with the budgeted evaluation
// count so the per-trial log is a single allocation instead of the
// append-doubling ladder.
func (h *History) Grow(n int) {
	if n <= 0 || cap(h.Observations)-len(h.Observations) >= n {
		return
	}
	grown := make([]Observation, len(h.Observations), len(h.Observations)+n)
	copy(grown, h.Observations)
	h.Observations = grown
}

// RoundsConsumed returns the total training rounds the run consumed.
func (h *History) RoundsConsumed() int {
	max := 0
	for _, o := range h.Observations {
		if o.CumRounds > max {
			max = o.CumRounds
		}
	}
	return max
}

// RecommendAt returns the configuration the method would return if stopped
// after the given training-round budget: among observations available within
// the budget, the one at the highest fidelity with the lowest observed
// error (decisions use noisy values — the tuner never sees true errors).
// ok is false if no observation fits the budget.
func (h *History) RecommendAt(budget int) (best Observation, ok bool) {
	for _, o := range h.Observations {
		if o.CumRounds > budget {
			continue
		}
		if !ok || better(o, best) {
			best, ok = o, true
		}
	}
	return best, ok
}

// Recommend returns the final recommendation (full budget).
func (h *History) Recommend() (Observation, bool) {
	return h.RecommendAt(1 << 62)
}

// TrueErrorCurve evaluates the recommendation trajectory: for each budget in
// budgets (ascending), the true error of the configuration the method would
// recommend at that point. Budgets before the first observation repeat the
// first recommendation (the paper's curves start at the first config).
func (h *History) TrueErrorCurve(budgets []int) []float64 {
	out := make([]float64, len(budgets))
	for i, b := range budgets {
		if rec, ok := h.RecommendAt(b); ok {
			out[i] = rec.True
		} else if first, ok := h.firstObservation(); ok {
			out[i] = first.True
		} else {
			out[i] = 1
		}
	}
	return out
}

func (h *History) firstObservation() (Observation, bool) {
	if len(h.Observations) == 0 {
		return Observation{}, false
	}
	first := h.Observations[0]
	for _, o := range h.Observations[1:] {
		if o.CumRounds < first.CumRounds {
			first = o
		}
	}
	return first, true
}

// better orders observations for recommendation: higher fidelity wins;
// within a fidelity, lower observed error wins.
func better(a, b Observation) bool {
	if a.Rounds != b.Rounds {
		return a.Rounds > b.Rounds
	}
	return a.Observed < b.Observed
}

// Method is one hyperparameter tuning algorithm.
type Method interface {
	// Name is the method's display name (RS, TPE, HB, BOHB, ...).
	Name() string
	// Run tunes against the oracle within the settings' budget, using g for
	// all stochastic choices, and returns the observation history.
	Run(o Oracle, space Space, s Settings, g *rng.RNG) *History
}

// sampleConfig draws a candidate: uniformly from the oracle's pool in bank
// mode (the paper's bootstrap protocol resamples the 128 pre-trained
// configs), or from the continuous space in live mode.
func sampleConfig(o Oracle, space Space, g *rng.RNG) fl.HParams {
	if pool := o.Pool(); len(pool) > 0 {
		return pool[g.IntN(len(pool))]
	}
	return space.Sample(g)
}

// RungRounds returns the fidelity grid {maxR/η^(levels-1), ..., maxR/η, maxR}
// (integer division, deduplicated, minimum 1) used by SHA brackets and by
// config banks to place checkpoints.
func RungRounds(maxR, eta, levels int) []int {
	if maxR < 1 || eta < 2 || levels < 1 {
		panic(fmt.Sprintf("hpo: RungRounds(%d, %d, %d) invalid", maxR, eta, levels))
	}
	seen := map[int]bool{}
	var out []int
	r := maxR
	for i := 0; i < levels; i++ {
		if r < 1 {
			r = 1
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
		r /= eta
	}
	sort.Ints(out)
	return out
}

func inf() float64 { return math.Inf(1) }
