package hpo

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// ErrDriverClosed is returned by Ask and Tell after Close (or after the
// driven method finished and its history was collected).
var ErrDriverClosed = errors.New("hpo: ask/tell driver closed")

// EvalRequest is one evaluation the driven method wants answered: "tell me
// the observed error of Config trained to Rounds, evaluated under EvalID's
// cohort". IDs are sequential from 0 and every request must be answered (or
// the driver closed) before the method can progress.
type EvalRequest struct {
	// ID is the sequential ask identifier; Tell must echo it.
	ID int
	// Config is the configuration the method wants evaluated.
	Config fl.HParams
	// PoolIndex is Config's index in the oracle's candidate pool, or -1 when
	// the oracle has no pool (live mode) or the config is not a pool member.
	PoolIndex int
	// Rounds is the training fidelity requested.
	Rounds int
	// EvalID names the evaluation cohort (asks sharing an EvalID expect the
	// same sampled client subset — SHA rungs evaluate all survivors on one).
	EvalID string
}

// pendingEval pairs a request with its one-shot answer channel.
type pendingEval struct {
	req   EvalRequest
	reply chan float64
}

// errAskTellClosed is the sentinel panic that unwinds the method goroutine
// when the driver is closed mid-run.
type errAskTellClosed struct{}

// AskTellDriver inverts a Method's control flow: instead of the method
// calling Oracle.Evaluate synchronously, the method runs in its own
// goroutine against a proxy oracle whose Evaluate blocks on a channel
// handshake. Ask surfaces the method's next pending evaluation; Tell feeds
// the observed value back and resumes the method. Any registered Method
// works unmodified — this is what lets noisyevald expose RS, SHA, TPE, or
// FedPop as a stateful ask/tell session to external callers (DESIGN.md §10).
//
// The driver is safe for concurrent use, but the protocol is sequential:
// one pending ask at a time, answered in order. Ask is idempotent — calling
// it again without an intervening Tell returns the same EvalRequest.
type AskTellDriver struct {
	oracle Oracle

	pending chan pendingEval
	done    chan struct{} // closed when the method goroutine returns
	closed  chan struct{} // closed by Close; unblocks the proxy oracle

	closeOnce sync.Once

	mu      sync.Mutex
	cur     *pendingEval // Ask'd but not yet Tell'd
	hist    *History     // set when the method returns normally
	err     error        // set when the method panicked or was closed mid-run
	next    int          // next ask ID
	poolIdx map[fl.HParams]int
}

// NewAskTellDriver starts m.Run in a background goroutine against a proxy of
// o and returns the driver. The method's stochastic choices use g exactly as
// a direct Run would, so driving every ask with the real oracle's answer
// reproduces m.Run(o, space, s, g) observation for observation.
func NewAskTellDriver(m Method, o Oracle, space Space, s Settings, g *rng.RNG) *AskTellDriver {
	d := &AskTellDriver{
		oracle:  o,
		pending: make(chan pendingEval),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		defer func() {
			if r := recover(); r != nil {
				d.mu.Lock()
				defer d.mu.Unlock()
				if _, isClose := r.(errAskTellClosed); isClose {
					d.err = ErrDriverClosed
				} else {
					d.err = fmt.Errorf("hpo: method %s panicked: %v", m.Name(), r)
				}
			}
		}()
		h := m.Run(proxyOracle{d}, space, s, g)
		d.mu.Lock()
		d.hist = h
		d.mu.Unlock()
	}()
	return d
}

// proxyOracle is the oracle handed to the driven method. Evaluate performs
// the ask/tell handshake; everything else forwards to the real oracle (pool,
// fidelity grid, and sample size are static facts, and TrueError touches no
// evaluation scratch, so forwarding races with nothing).
type proxyOracle struct{ d *AskTellDriver }

func (p proxyOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	return p.d.exchange(cfg, rounds, evalID)
}
func (p proxyOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	return p.d.oracle.TrueError(cfg, rounds)
}
func (p proxyOracle) SampleSize() int    { return p.d.oracle.SampleSize() }
func (p proxyOracle) Pool() []fl.HParams { return p.d.oracle.Pool() }
func (p proxyOracle) MaxRounds() int     { return p.d.oracle.MaxRounds() }

// exchange runs on the method goroutine: publish the request, block until
// Tell answers it. A concurrent Close unwinds the goroutine via the sentinel
// panic so the method never leaks.
func (d *AskTellDriver) exchange(cfg fl.HParams, rounds int, evalID string) float64 {
	d.mu.Lock()
	id := d.next
	d.next++
	d.mu.Unlock()
	pe := pendingEval{
		req: EvalRequest{
			ID: id, Config: cfg, PoolIndex: d.poolIndex(cfg),
			Rounds: rounds, EvalID: evalID,
		},
		reply: make(chan float64, 1),
	}
	select {
	case d.pending <- pe:
	case <-d.closed:
		panic(errAskTellClosed{})
	}
	select {
	case v := <-pe.reply:
		return v
	case <-d.closed:
		panic(errAskTellClosed{})
	}
}

// poolIndex resolves cfg's pool position lazily (the pool is static, so the
// map is built once on first use; fl.HParams is comparable and is already
// the bank's own index key).
func (d *AskTellDriver) poolIndex(cfg fl.HParams) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poolIdx == nil {
		pool := d.oracle.Pool()
		d.poolIdx = make(map[fl.HParams]int, len(pool))
		for i, c := range pool {
			if _, dup := d.poolIdx[c]; !dup {
				d.poolIdx[c] = i
			}
		}
	}
	if i, ok := d.poolIdx[cfg]; ok {
		return i
	}
	return -1
}

// Ask returns the method's next pending evaluation. ok is false when the
// method has finished (History then returns its result). Ask is idempotent:
// an unanswered request is returned again. It blocks until the method posts
// a request, finishes, the driver closes, or ctx expires.
func (d *AskTellDriver) Ask(ctx context.Context) (req EvalRequest, ok bool, err error) {
	select {
	case <-d.closed:
		return EvalRequest{}, false, ErrDriverClosed
	default:
	}
	d.mu.Lock()
	if cur := d.cur; cur != nil {
		d.mu.Unlock()
		return cur.req, true, nil
	}
	d.mu.Unlock()

	select {
	case pe := <-d.pending:
		d.mu.Lock()
		d.cur = &pe
		d.mu.Unlock()
		return pe.req, true, nil
	case <-d.done:
		d.mu.Lock()
		defer d.mu.Unlock()
		return EvalRequest{}, false, d.err
	case <-d.closed:
		return EvalRequest{}, false, ErrDriverClosed
	case <-ctx.Done():
		return EvalRequest{}, false, ctx.Err()
	}
}

// Tell answers the pending ask with its observed error and resumes the
// method. id must match the pending request's ID; telling with no pending
// ask (Ask not called, or already answered) is an error.
func (d *AskTellDriver) Tell(id int, observed float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.closed:
		return ErrDriverClosed
	default:
	}
	if d.cur == nil {
		return fmt.Errorf("hpo: tell %d with no pending ask", id)
	}
	if d.cur.req.ID != id {
		return fmt.Errorf("hpo: tell %d does not match pending ask %d", id, d.cur.req.ID)
	}
	d.cur.reply <- observed // buffered; never blocks
	d.cur = nil
	return nil
}

// Pending returns the current unanswered ask, if any, without blocking.
func (d *AskTellDriver) Pending() (EvalRequest, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cur != nil {
		return d.cur.req, true
	}
	return EvalRequest{}, false
}

// Done reports whether the method goroutine has returned.
func (d *AskTellDriver) Done() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// Close terminates the driver: a blocked method goroutine unwinds
// immediately and Ask/Tell return ErrDriverClosed. Close is idempotent,
// safe to call concurrently with Ask/Tell, and waits for the method
// goroutine to exit — after Close returns, nothing references the oracle.
func (d *AskTellDriver) Close() {
	d.closeOnce.Do(func() { close(d.closed) })
	<-d.done
}

// History returns the finished method's observation log. It is nil (with a
// nil error) while the method is still running; after a mid-run Close or a
// method panic it is nil with the terminal error.
func (d *AskTellDriver) History() (*History, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hist != nil {
		return d.hist, nil
	}
	return nil, d.err
}
