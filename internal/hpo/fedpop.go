package hpo

import (
	"math"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// FedPop is population-based federated hyperparameter tuning in the spirit
// of FedPop (Chen et al., 2023): a fixed population of configurations trains
// along a fidelity ladder, and after every rung the worst members are
// replaced by perturbed copies of surviving members (exploit + explore,
// Jaderberg et al.'s PBT adapted to the bank protocol). Replaced members
// restart training from round 0, which the budget accounting charges in
// full, so FedPop trades mid-run exploration against the retraining cost —
// exactly the trade-off the noisy-evaluation study stresses, since each
// generation's culling decision is made on a noisy (and under DP, privately
// released) cohort evaluation.
//
// In bank mode every perturbed configuration snaps to its nearest pool
// member (NearestConfig), keeping the method inside the pre-trained pool.
type FedPop struct {
	// Population is the number of concurrently trained members (default 8).
	Population int
	// SurviveFrac is the fraction of members kept each generation; the rest
	// are replaced by perturbed survivors (default 0.5).
	SurviveFrac float64
	// Perturb scales the exploration jitter: learning rates move by a factor
	// of up to 10^±Perturb, linear parameters by ±Perturb of their range, and
	// the batch size resamples with probability Perturb (default 0.25).
	Perturb float64
	// R0 is the first-generation fidelity (default MaxPerConfig / η²).
	R0 int
}

// Name implements Method.
func (FedPop) Name() string { return "FedPop" }

// Run implements Method.
func (fp FedPop) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	h := &History{MethodName: "FedPop"}
	maxR := perConfigRounds(o, s)

	pop := fp.Population
	if pop < 2 {
		pop = 8
	}
	surviveFrac := fp.SurviveFrac
	if surviveFrac <= 0 || surviveFrac >= 1 {
		surviveFrac = 0.5
	}
	perturb := fp.Perturb
	if perturb <= 0 {
		perturb = 0.25
	}
	r0 := fp.R0
	if r0 < 1 {
		r0 = maxR / (s.Eta * s.Eta)
		if r0 < 1 {
			r0 = 1
		}
	}

	ladder := rungLadder(r0, maxR, s.Eta)
	keep := int(float64(pop) * surviveFrac)
	if keep < 1 {
		keep = 1
	}
	if keep >= pop {
		keep = pop - 1
	}

	members := make([]fl.HParams, pop)
	trained := make([]int, pop) // rounds already trained per member
	gSub := rng.New(0)
	for i := range members {
		g.SplitIntInto(gSub, "member-", i)
		members[i] = sampleConfig(o, space, gSub)
	}

	cum := 0
	for gen, r := range ladder {
		// Advance every member to this generation's fidelity. Replaced
		// members retrain from scratch, so their cost is the full r.
		cost := 0
		for _, t := range trained {
			cost += r - t
		}
		if cum+cost > s.Budget.TotalRounds {
			break // budget exhausted; the run truncates at the last generation
		}
		cum += cost
		for i := range trained {
			trained[i] = r
		}

		// Shared evaluation cohort per generation (Figure 2 of the paper);
		// under DP the one-shot top-k mechanism calibrates to the ladder
		// length like a single SHA bracket.
		evalID := fedpopGenIDs.ID(gen)
		errs := make([]float64, pop)
		batch := EvalBatch{Configs: members, SameRounds: r, SameEvalID: evalID, Out: errs}
		EvaluateAll(o, &batch)
		scale := dp.TopKScale(len(ladder), keep, o.SampleSize(), s.Epsilon)
		var noiseG *rng.RNG
		if scale > 0 {
			noiseG = g.Splitf("noise-%d", gen)
		}
		noisy := dp.OneShotNoisy(errs, scale, noiseG)

		h.Grow(pop)
		for i, cfg := range members {
			h.Add(Observation{
				Config: cfg, Rounds: r, Observed: noisy[i],
				True: o.TrueError(cfg, r), CumRounds: cum,
			})
		}
		if gen == len(ladder)-1 {
			break
		}

		// Exploit + explore: members outside the noisy top-keep copy a random
		// elite member and jitter it.
		elite := dp.BottomK(noisy, keep)
		isElite := make(map[int]bool, keep)
		for _, idx := range elite {
			isElite[idx] = true
		}
		gg := g.Splitf("evolve-%d", gen)
		for i := range members {
			if isElite[i] {
				continue
			}
			parent := members[elite[gg.Splitf("parent-%d", i).IntN(len(elite))]]
			members[i] = fp.perturbConfig(parent, space, o.Pool(), perturb, gg.Splitf("perturb-%d", i))
			trained[i] = 0
		}
	}
	return h
}

// perturbConfig jitters one parent configuration inside the space, then (in
// bank mode) snaps the child to the nearest pool member so the oracle can
// serve it from pre-trained checkpoints.
func (FedPop) perturbConfig(parent fl.HParams, space Space, pool []fl.HParams, perturb float64, g *rng.RNG) fl.HParams {
	c := parent
	logJitter := func(v, lo, hi float64, g *rng.RNG) float64 {
		v *= math.Pow(10, g.Uniform(-perturb, perturb))
		return math.Min(math.Max(v, lo), hi)
	}
	linJitter := func(v, lo, hi float64, g *rng.RNG) float64 {
		v += g.Uniform(-perturb, perturb) * (hi - lo)
		return math.Min(math.Max(v, lo), hi)
	}
	c.ServerLR = logJitter(c.ServerLR, space.ServerLRMin, space.ServerLRMax, g.Split("slr"))
	c.ClientLR = logJitter(c.ClientLR, space.ClientLRMin, space.ClientLRMax, g.Split("clr"))
	c.Beta1 = linJitter(c.Beta1, space.Beta1Min, space.Beta1Max, g.Split("b1"))
	c.Beta2 = linJitter(c.Beta2, space.Beta2Min, space.Beta2Max, g.Split("b2"))
	c.ClientMomentum = linJitter(c.ClientMomentum, space.MomentumMin, space.MomentumMax, g.Split("mom"))
	if len(space.BatchSizes) > 0 && g.Split("bs").Bool(perturb) {
		c.BatchSize = space.BatchSizes[g.Split("bs-pick").IntN(len(space.BatchSizes))]
	}
	if len(pool) > 0 {
		return pool[NearestConfig(pool, c, space)]
	}
	return c
}

// NearestConfig returns the index of the pool member closest to h under a
// normalized per-parameter distance: learning rates compare in log space
// scaled by the space's log-range, linear parameters by their range, and a
// batch-size mismatch costs one full unit. Ties break to the lowest index,
// so snapping is deterministic. This is the pool-snapping rule shared by
// FedPop's explore step and the session API's tell-by-config path
// (DESIGN.md §10).
func NearestConfig(pool []fl.HParams, h fl.HParams, space Space) int {
	if len(pool) == 0 {
		panic("hpo: NearestConfig on empty pool")
	}
	logDist := func(a, b, lo, hi float64) float64 {
		span := math.Log(hi) - math.Log(lo)
		if !(span > 0) || a <= 0 || b <= 0 {
			if a == b {
				return 0
			}
			return 1
		}
		return math.Abs(math.Log(a)-math.Log(b)) / span
	}
	linDist := func(a, b, lo, hi float64) float64 {
		span := hi - lo
		if !(span > 0) {
			if a == b {
				return 0
			}
			return 1
		}
		return math.Abs(a-b) / span
	}
	dist := func(c fl.HParams) float64 {
		d := logDist(c.ServerLR, h.ServerLR, space.ServerLRMin, space.ServerLRMax)
		d += logDist(c.ClientLR, h.ClientLR, space.ClientLRMin, space.ClientLRMax)
		d += linDist(c.Beta1, h.Beta1, space.Beta1Min, space.Beta1Max)
		d += linDist(c.Beta2, h.Beta2, space.Beta2Min, space.Beta2Max)
		d += linDist(c.ClientMomentum, h.ClientMomentum, space.MomentumMin, space.MomentumMax)
		if c.BatchSize != h.BatchSize {
			d++
		}
		return d
	}
	best, bestD := 0, math.Inf(1)
	for i, c := range pool {
		if d := dist(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
