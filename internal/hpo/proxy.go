package hpo

import (
	"noisyeval/internal/rng"
)

// OneShotProxyRS is the paper's proposed baseline (§4): run random search
// entirely on public server-side proxy data — where evaluation needs no
// client subsampling and no DP noise — and train only the single winning
// configuration on the client data. Because exactly one configuration
// touches the clients, the selection step is immune to every source of
// federated evaluation noise; quality depends only on how well
// hyperparameters transfer from the proxy task to the client task
// (Observations 7–8).
type OneShotProxyRS struct {
	// Proxy evaluates configurations on the proxy dataset. It should be
	// noise-free (full evaluation, no DP): the proxy data is public and
	// centralized.
	Proxy Oracle
}

// Name implements Method.
func (OneShotProxyRS) Name() string { return "ProxyRS" }

// Run implements Method. Proxy-side search consumes no client training
// rounds (it runs server-side on public data); the client-side training of
// the single chosen configuration is charged normally and produces one
// observation per checkpoint so that budget curves (Figure 12) can be drawn.
func (m OneShotProxyRS) Run(target Oracle, space Space, s Settings, g *rng.RNG) *History {
	if m.Proxy == nil {
		panic("hpo: OneShotProxyRS needs a proxy oracle")
	}
	s = s.Normalize()
	h := &History{MethodName: "ProxyRS"}

	// Step 1: plain RS on the proxy (noiseless, non-private by construction).
	proxyMaxR := m.Proxy.MaxRounds()
	if pc := s.Budget.MaxPerConfig; pc < proxyMaxR {
		proxyMaxR = pc
	}
	gSub := rng.New(0)
	best, bestErr := sampleConfig(m.Proxy, space, g.Split("cfg-0")), 0.0
	for i := 0; i < s.Budget.K; i++ {
		g.SplitIntInto(gSub, "cfg-", i)
		cfg := sampleConfig(m.Proxy, space, gSub)
		err := m.Proxy.Evaluate(cfg, proxyMaxR, proxyEvalIDs.ID(i))
		if i == 0 || err < bestErr {
			best, bestErr = cfg, err
		}
	}

	// Step 2: train the single winner on the client data, recording its true
	// error at every checkpoint up to the per-config budget.
	maxR := perConfigRounds(target, s)
	cum := 0
	for _, r := range RungRounds(maxR, s.Eta, 5) {
		cum = r
		h.Add(Observation{
			Config: best, Rounds: r,
			// The proxy method never consults client evaluations; Observed
			// carries the proxy-side score so RecommendAt stays meaningful.
			Observed:  bestErr,
			True:      target.TrueError(best, r),
			CumRounds: cum,
		})
	}
	return h
}
