package hpo

import (
	"math"
	"testing"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// faultyOracle injects pathological evaluations: NaN on selected calls,
// constant ties otherwise. Tuning methods must stay within budget and still
// return a recommendation.
type faultyOracle struct {
	testOracle
	nanEvery int
	calls    int
}

func (o *faultyOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	o.calls++
	if o.nanEvery > 0 && o.calls%o.nanEvery == 0 {
		return math.NaN()
	}
	return 0.5 // constant tie
}

func newFaultyOracle(nanEvery int) *faultyOracle {
	return &faultyOracle{
		testOracle: *newTestOracle(0),
		nanEvery:   nanEvery,
	}
}

func TestMethodsSurviveTiedEvaluations(t *testing.T) {
	for _, m := range []Method{RandomSearch{}, TPE{}, Hyperband{}, BOHB{}, SuccessiveHalving{N: 9, R0: 5}, ResampledRS{}} {
		o := newFaultyOracle(0) // all evaluations tie at 0.5
		h := m.Run(o, DefaultSpace(), smallSettings(), rng.New(40))
		if len(h.Observations) == 0 {
			t.Errorf("%s: no observations under ties", m.Name())
			continue
		}
		if _, ok := h.Recommend(); !ok {
			t.Errorf("%s: no recommendation under ties", m.Name())
		}
		if h.RoundsConsumed() > smallSettings().Budget.TotalRounds {
			t.Errorf("%s: budget exceeded under ties", m.Name())
		}
	}
}

func TestMethodsSurviveNaNEvaluations(t *testing.T) {
	for _, m := range []Method{RandomSearch{}, TPE{}, Hyperband{}, BOHB{}} {
		o := newFaultyOracle(3) // every third evaluation is NaN
		h := m.Run(o, DefaultSpace(), smallSettings(), rng.New(41))
		if len(h.Observations) == 0 {
			t.Errorf("%s: no observations under NaN injection", m.Name())
			continue
		}
		rec, ok := h.Recommend()
		if !ok {
			t.Errorf("%s: no recommendation under NaN injection", m.Name())
			continue
		}
		// The recommendation must never itself be a NaN observation when
		// non-NaN observations exist at the top fidelity.
		if math.IsNaN(rec.Observed) {
			hasClean := false
			for _, obs := range h.Observations {
				if obs.Rounds == rec.Rounds && !math.IsNaN(obs.Observed) {
					hasClean = true
					break
				}
			}
			if hasClean {
				t.Errorf("%s: recommended a NaN-scored config over clean ones", m.Name())
			}
		}
	}
}

func TestZeroKBudget(t *testing.T) {
	s := smallSettings()
	s.Budget.K = 0
	o := newTestOracle(0)
	h := RandomSearch{}.Run(o, DefaultSpace(), s, rng.New(42))
	if len(h.Observations) != 0 {
		t.Error("K=0 should produce no observations")
	}
	if _, ok := h.Recommend(); ok {
		t.Error("K=0 should produce no recommendation")
	}
}

func TestBudgetSmallerThanOneConfig(t *testing.T) {
	s := smallSettings()
	s.Budget.TotalRounds = 100 // < MaxPerConfig = 405
	o := newTestOracle(0)
	h := RandomSearch{}.Run(o, DefaultSpace(), s, rng.New(43))
	if len(h.Observations) != 0 {
		t.Error("insufficient budget should produce no observations")
	}
}

func TestDegenerateSpaceSinglePoint(t *testing.T) {
	s := DefaultSpace()
	s.ServerLRMin, s.ServerLRMax = 1e-3, 1e-3+1e-12
	s.ClientLRMin, s.ClientLRMax = 1e-1, 1e-1+1e-12
	s.Beta1Min, s.Beta1Max = 0.5, 0.5
	s.Beta2Min, s.Beta2Max = 0.9, 0.9
	s.MomentumMin, s.MomentumMax = 0, 0
	s.BatchSizes = []int{32}
	o := newTestOracle(0.05)
	h := TPE{}.Run(o, s, smallSettings(), rng.New(44))
	if len(h.Observations) != 16 {
		t.Errorf("degenerate space observations = %d", len(h.Observations))
	}
	// All proposals collapse to (nearly) the same point; no panics allowed.
	for _, obs := range h.Observations {
		if obs.Config.BatchSize != 32 {
			t.Errorf("batch size escaped the degenerate space: %d", obs.Config.BatchSize)
		}
	}
}

func TestRecommendWithWorseningObservations(t *testing.T) {
	// Monotonically worsening observed errors: recommendation must be the
	// first (best) one at the top fidelity.
	h := &History{}
	for i := 0; i < 5; i++ {
		h.Add(Observation{Rounds: 405, Observed: 0.1 * float64(i+1), True: 0.1 * float64(i+1), CumRounds: (i + 1) * 405})
	}
	rec, _ := h.Recommend()
	if rec.Observed != 0.1 {
		t.Errorf("recommendation = %+v", rec)
	}
	// And the true-error curve is non-increasing.
	curve := h.TrueErrorCurve([]int{405, 810, 1215, 1620, 2025})
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("incumbent curve increased: %v", curve)
		}
	}
}
