package hpo

import (
	"math"
	"noisyeval/internal/fl"
	"testing"
)

func TestNoisyBORunsWithinBudget(t *testing.T) {
	o := newTestOracle(0.1)
	h := NoisyBO{}.Run(o, DefaultSpace(), smallSettings(), rngSeed(30))
	if len(h.Observations) == 0 {
		t.Fatal("no observations")
	}
	if h.RoundsConsumed() > 6480 {
		t.Errorf("training budget exceeded: %d", h.RoundsConsumed())
	}
	// Eval calls capped at 3*K by default.
	if o.evalCalls > 48 {
		t.Errorf("eval calls = %d, want <= 48", o.evalCalls)
	}
	rec, ok := h.Recommend()
	if !ok || math.IsNaN(rec.True) {
		t.Fatalf("recommendation = %+v", rec)
	}
}

func TestNoisyBOBeatsPlainRSUnderHeavyNoise(t *testing.T) {
	// The point of the method: posterior averaging should lower selection
	// regret under heavy evaluation noise relative to single-shot RS.
	regret := func(m Method) float64 {
		total := 0.0
		for seed := uint64(0); seed < 30; seed++ {
			o := newTestOracle(0.3)
			o.seed = seed
			h := m.Run(o, DefaultSpace(), smallSettings(), rngSeed(700+seed))
			rec, _ := h.Recommend()
			best := math.Inf(1)
			for _, obs := range h.Observations {
				if obs.True < best {
					best = obs.True
				}
			}
			total += rec.True - best
		}
		return total / 30
	}
	rs, nbo := regret(RandomSearch{}), regret(NoisyBO{})
	if nbo > rs {
		t.Errorf("NoisyBO regret %.4f should not exceed RS regret %.4f under heavy noise", nbo, rs)
	}
}

func TestNoisyBOReevaluatesPromisingConfigs(t *testing.T) {
	o := newTestOracle(0.2)
	h := NoisyBO{EvalBudget: 64}.Run(o, DefaultSpace(), smallSettings(), rngSeed(31))
	// With eval budget above the candidate count, some config must be
	// observed more than once.
	counts := map[fl.HParams]int{}
	for _, obs := range h.Observations {
		counts[obs.Config]++
	}
	multi := 0
	for _, c := range counts {
		if c > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no configuration was re-evaluated")
	}
}

func TestNoisyBODeterminism(t *testing.T) {
	run := func() float64 {
		o := newTestOracle(0.1)
		h := NoisyBO{}.Run(o, DefaultSpace(), smallSettings(), rngSeed(32))
		rec, _ := h.Recommend()
		return rec.True
	}
	if run() != run() {
		t.Error("NoisyBO not deterministic")
	}
}

func TestNoisyBOName(t *testing.T) {
	if (NoisyBO{}).Name() != "NoisyBO" {
		t.Error("name")
	}
}
