package hpo

import (
	"strconv"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// ResampledRS is random search with re-evaluation averaging, the "simple
// trick" noise mitigation the paper discusses in §5 (Hertel et al., 2020):
// every configuration is evaluated Reps times on independent client cohorts
// and selected by the mean observed error. Averaging shrinks subsampling
// variance by 1/√Reps at the cost of Reps× more evaluation rounds — and
// under DP the extra releases proportionally inflate the per-release noise,
// which is why resampling "varies in effectiveness" (§5).
type ResampledRS struct {
	// Reps is the number of independent evaluations per configuration
	// (default 3).
	Reps int
}

// Name implements Method.
func (ResampledRS) Name() string { return "RS+reeval" }

// Run implements Method.
func (m ResampledRS) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	reps := m.Reps
	if reps < 1 {
		reps = 3
	}
	h := &History{MethodName: m.Name()}
	maxR := perConfigRounds(o, s)
	k := s.Budget.K
	// DP: every one of the K*reps releases consumes budget.
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: k * reps}
	h.Grow(k)
	gSub := rng.New(0)
	// All K·reps evaluations are independent of one another, so the full
	// resampling grid is one batch (see RandomSearch.Run for the
	// bit-identity argument); DP releases stay in (i, rep) order below.
	cfgs := make([]fl.HParams, 0, k)
	evalCfgs := make([]fl.HParams, 0, k*reps)
	ids := make([]string, 0, k*reps)
	cum := 0
	for i := 0; i < k; i++ {
		if cum+maxR > s.Budget.TotalRounds {
			break
		}
		g.SplitIntInto(gSub, "cfg-", i)
		cfg := sampleConfig(o, space, gSub)
		cfgs = append(cfgs, cfg)
		iStr := strconv.Itoa(i)
		for rep := 0; rep < reps; rep++ {
			evalCfgs = append(evalCfgs, cfg)
			ids = append(ids, "reeval-"+iStr+"-"+strconv.Itoa(rep))
		}
		cum += maxR
	}
	batch := EvalBatch{Configs: evalCfgs, EvalIDs: ids, SameRounds: maxR, Out: make([]float64, len(evalCfgs))}
	EvaluateAll(o, &batch)
	cum = 0
	for i, cfg := range cfgs {
		cum += maxR
		sum := 0.0
		for rep := 0; rep < reps; rep++ {
			obs := batch.Out[i*reps+rep]
			if dpp.Private() {
				obs = dpp.Release(obs, o.SampleSize(), g.Splitf("dp-%d-%d", i, rep))
			}
			sum += obs
		}
		h.Add(Observation{
			Config:    cfg,
			Rounds:    maxR,
			Observed:  sum / float64(reps),
			True:      o.TrueError(cfg, maxR),
			CumRounds: cum,
		})
	}
	return h
}
