package hpo

import (
	"fmt"

	"noisyeval/internal/dp"
	"noisyeval/internal/rng"
)

// ResampledRS is random search with re-evaluation averaging, the "simple
// trick" noise mitigation the paper discusses in §5 (Hertel et al., 2020):
// every configuration is evaluated Reps times on independent client cohorts
// and selected by the mean observed error. Averaging shrinks subsampling
// variance by 1/√Reps at the cost of Reps× more evaluation rounds — and
// under DP the extra releases proportionally inflate the per-release noise,
// which is why resampling "varies in effectiveness" (§5).
type ResampledRS struct {
	// Reps is the number of independent evaluations per configuration
	// (default 3).
	Reps int
}

// Name implements Method.
func (ResampledRS) Name() string { return "RS+reeval" }

// Run implements Method.
func (m ResampledRS) Run(o Oracle, space Space, s Settings, g *rng.RNG) *History {
	s = s.Normalize()
	reps := m.Reps
	if reps < 1 {
		reps = 3
	}
	h := &History{MethodName: m.Name()}
	maxR := perConfigRounds(o, s)
	k := s.Budget.K
	// DP: every one of the K*reps releases consumes budget.
	dpp := dp.Params{Epsilon: s.Epsilon, TotalEvals: k * reps}
	cum := 0
	for i := 0; i < k; i++ {
		if cum+maxR > s.Budget.TotalRounds {
			break
		}
		cfg := sampleConfig(o, space, g.Splitf("cfg-%d", i))
		cum += maxR
		sum := 0.0
		for rep := 0; rep < reps; rep++ {
			obs := o.Evaluate(cfg, maxR, fmt.Sprintf("reeval-%d-%d", i, rep))
			sum += dpp.Release(obs, o.SampleSize(), g.Splitf("dp-%d-%d", i, rep))
		}
		h.Add(Observation{
			Config:    cfg,
			Rounds:    maxR,
			Observed:  sum / float64(reps),
			True:      o.TrueError(cfg, maxR),
			CumRounds: cum,
		})
	}
	return h
}
