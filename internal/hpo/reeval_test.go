package hpo

import (
	"math"
	"testing"
)

func TestResampledRSBudgetAndShape(t *testing.T) {
	o := newTestOracle(0.1)
	h := ResampledRS{Reps: 4}.Run(o, DefaultSpace(), smallSettings(), rng4())
	if len(h.Observations) != 16 {
		t.Fatalf("observations = %d", len(h.Observations))
	}
	// Each config was evaluated Reps times.
	if o.evalCalls != 16*4 {
		t.Errorf("eval calls = %d, want 64", o.evalCalls)
	}
	if h.RoundsConsumed() != 6480 {
		t.Errorf("rounds = %d", h.RoundsConsumed())
	}
}

func TestResampledRSReducesSubsamplingRegret(t *testing.T) {
	// Averaging independent evaluations should pick better configs than
	// single-evaluation RS under pure subsampling noise (no DP).
	regret := func(m Method) float64 {
		total := 0.0
		for seed := uint64(0); seed < 25; seed++ {
			o := newTestOracle(0.25)
			o.seed = seed
			h := m.Run(o, DefaultSpace(), smallSettings(), rngSeed(500+seed))
			rec, _ := h.Recommend()
			best := math.Inf(1)
			for _, obs := range h.Observations {
				if obs.True < best {
					best = obs.True
				}
			}
			total += rec.True - best
		}
		return total / 25
	}
	plain := regret(RandomSearch{})
	avg := regret(ResampledRS{Reps: 5})
	if avg > plain {
		t.Errorf("re-evaluation regret %.4f should not exceed plain RS %.4f", avg, plain)
	}
}

func TestResampledRSDefaultReps(t *testing.T) {
	o := newTestOracle(0)
	ResampledRS{}.Run(o, DefaultSpace(), smallSettings(), rng4())
	if o.evalCalls != 16*3 {
		t.Errorf("default reps should be 3, saw %d calls", o.evalCalls)
	}
}

func TestResampledRSName(t *testing.T) {
	if (ResampledRS{}).Name() != "RS+reeval" {
		t.Error("name")
	}
}
