package hpo_test

import (
	"fmt"

	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// ExampleSpace_Sample draws a configuration from the paper's Appendix-B
// search space.
func ExampleSpace_Sample() {
	space := hpo.DefaultSpace()
	cfg := space.Sample(rng.New(7))
	fmt.Println(space.Contains(cfg))
	fmt.Println(cfg.BatchSize == 32 || cfg.BatchSize == 64 || cfg.BatchSize == 128)
	// Output:
	// true
	// true
}

// ExampleRungRounds shows the paper's SHA fidelity ladder.
func ExampleRungRounds() {
	fmt.Println(hpo.RungRounds(405, 3, 5))
	// Output:
	// [5 15 45 135 405]
}

// ExampleHistory_RecommendAt demonstrates budget-indexed recommendations.
func ExampleHistory_RecommendAt() {
	h := &hpo.History{}
	h.Add(hpo.Observation{Rounds: 405, Observed: 0.40, True: 0.41, CumRounds: 405})
	h.Add(hpo.Observation{Rounds: 405, Observed: 0.35, True: 0.37, CumRounds: 810})
	early, _ := h.RecommendAt(405)
	late, _ := h.RecommendAt(810)
	fmt.Printf("%.2f %.2f\n", early.Observed, late.Observed)
	// Output:
	// 0.40 0.35
}
