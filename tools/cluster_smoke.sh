#!/usr/bin/env sh
# End-to-end cluster smoke test, shared by `make cluster-smoke` and CI's
# cluster job: boot a coordinator daemon (noisyevald -cluster, no self-build)
# plus two noisyworker processes, build the quick-scale banks cold through
# sharded fleet leases — asserting via each worker's expvar counters that
# BOTH workers trained shards — then restart the daemon against the same
# cache and re-run warm, asserting zero banks trained.
#
# Usage: tools/cluster_smoke.sh [addr] [cache-dir]
set -eu

ADDR="${1:-127.0.0.1:8733}"
CACHE="${2:-$(mktemp -d)}"
W1_ADDR=127.0.0.1:8734
W2_ADDR=127.0.0.1:8735

go build -o /tmp/noisyevald-cluster ./cmd/noisyevald
go build -o /tmp/noisyworker-cluster ./cmd/noisyworker

wait_health() { # url label
  i=0
  until curl -sf --max-time 5 "$1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -gt 100 ] && { echo "$2 never became healthy"; exit 1; }
    sleep 0.2
  done
}

submit_and_wait() { # body
  ID=$(curl -sf --max-time 30 -X POST "http://$ADDR/v1/runs" -d "$1" |
    sed -n 's/.*"id": "\(run-[0-9]*\)".*/\1/p')
  [ -n "$ID" ] || { echo "submit returned no run id"; exit 1; }
  curl -sfN --max-time 600 "http://$ADDR/v1/runs/$ID/events" | tail -n 1 | grep -q '"state":"done"' ||
    { echo "run $ID did not reach done"; exit 1; }
}

# --- Cold pass: coordinator + two workers, no self-build ----------------
# Every shard must be trained by the external fleet (-self-build 0), so the
# per-worker expvar assertion below is meaningful. One config per shard
# spreads the work across both workers.
DPID= W1PID= W2PID= # pre-set: the EXIT trap must expand cleanly under set -u
/tmp/noisyevald-cluster -addr "$ADDR" -cache-dir "$CACHE" -cluster \
  -self-build 0 -shard-configs 1 &
DPID=$!
trap 'kill -9 ${DPID:-} ${W1PID:-} ${W2PID:-} 2>/dev/null || true' EXIT
wait_health "http://$ADDR" daemon

/tmp/noisyworker-cluster -coordinator "http://$ADDR" -addr "$W1_ADDR" -name w1 -poll 25ms &
W1PID=$!
/tmp/noisyworker-cluster -coordinator "http://$ADDR" -addr "$W2_ADDR" -name w2 -poll 25ms &
W2PID=$!
wait_health "http://$W1_ADDR" worker1
wait_health "http://$W2_ADDR" worker2
echo "cluster up: daemon $ADDR, workers $W1_ADDR $W2_ADDR"

# Two datasets' quick banks cold — dozens of single-config shards.
submit_and_wait '{"dataset":"cifar10","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}'
echo "cifar10 run done"
submit_and_wait '{"dataset":"femnist","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}'
echo "femnist run done"

# Cold run trained banks, and every shard came through the fleet.
curl -sf --max-time 30 "http://$ADDR/debug/vars" | grep -q '"dist_builds_completed": 2' ||
  { echo "expected 2 sharded builds"; curl -s "http://$ADDR/debug/vars"; exit 1; }

shards() { curl -sf --max-time 10 "http://$1/debug/vars" | sed -n 's/.*"shards_built": \([0-9]*\).*/\1/p'; }
S1=$(shards "$W1_ADDR"); S2=$(shards "$W2_ADDR")
echo "worker shards: w1=$S1 w2=$S2"
[ "${S1:-0}" -ge 1 ] || { echo "worker 1 built no shards"; exit 1; }
[ "${S2:-0}" -ge 1 ] || { echo "worker 2 built no shards"; exit 1; }

# Workers drain cleanly.
kill -TERM $W1PID $W2PID
wait $W1PID || { echo "worker 1 exited non-zero"; exit 1; }
wait $W2PID || { echo "worker 2 exited non-zero"; exit 1; }
kill -TERM $DPID
wait $DPID || { echo "daemon exited non-zero on SIGTERM"; exit 1; }
echo "cold cluster pass done"

# --- Warm pass: same cache, fresh daemon, zero training -----------------
/tmp/noisyevald-cluster -addr "$ADDR" -cache-dir "$CACHE" -cluster -self-build 0 -shard-configs 1 &
DPID=$!
wait_health "http://$ADDR" daemon

# No workers this time: if the cache missed, these submissions would hang —
# the 120s ceiling doubles as the "no retraining" assertion's teeth.
submit_and_wait '{"dataset":"cifar10","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}'
submit_and_wait '{"dataset":"femnist","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}'

curl -sf --max-time 30 "http://$ADDR/debug/vars" | grep -q '"bank_builds_trained": 0' ||
  { echo "warm rerun trained banks"; curl -s "http://$ADDR/debug/vars"; exit 1; }
curl -sf --max-time 30 "http://$ADDR/debug/vars" | grep -q '"dist_builds_started": 0' ||
  { echo "warm rerun scheduled sharded builds"; exit 1; }
echo "warm pass: 0 banks trained, 0 sharded builds"

kill -TERM $DPID
wait $DPID || { echo "daemon exited non-zero on SIGTERM"; exit 1; }
trap - EXIT
echo "cluster smoke passed"
