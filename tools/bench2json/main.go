// Command bench2json converts `go test -bench` text output (stdin) into a
// JSON array (stdout), one object per benchmark line with every reported
// metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units). CI runs
// it after the benchmark smoke job so the perf trajectory is archived as a
// machine-readable BENCH_*.json artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	entries := []Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkX-8  10  123 ns/op  4 B/op  2 allocs/op".
// Metric values and units alternate after the iteration count.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}
