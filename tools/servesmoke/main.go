// Command servesmoke is the end-to-end exerciser for a running noisyevald,
// built on pkg/client — the same path an external program takes. It checks
// the run lifecycle (submit, stream, result, dedup), the method catalogue,
// and the ask/tell session API: a session driven trial-by-trial over the
// wire must land on exactly the recommendation the server-driven run
// computes for the same inputs.
//
// It also exercises the observability surface: the run's span timeline at
// /v1/runs/{id}/trace must hold the expected phases, and a /metrics scrape
// after the e2e traffic must show non-zero admission and oracle-trial series.
//
// Usage: servesmoke -base http://127.0.0.1:8723
//
// Exits 0 on success; prints the first failure and exits 1 otherwise.
// tools/serve_smoke.sh boots a daemon and runs this against it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"noisyeval/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesmoke: ")
	base := flag.String("base", "http://127.0.0.1:8723", "noisyevald base URL")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall budget")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, client.New(*base)); err != nil {
		log.Print(err)
		os.Exit(1)
	}
	log.Print("serve smoke passed")
}

func run(ctx context.Context, c *client.Client) error {
	// Health must come up before anything else is meaningful.
	var health client.Health
	for {
		h, err := c.GetHealth(ctx)
		if err == nil {
			health = h
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("daemon never became healthy: %w", err)
		case <-time.After(200 * time.Millisecond):
		}
	}
	if health.Status != "ok" {
		return fmt.Errorf("health status %q", health.Status)
	}
	log.Print("healthz ok")

	// Method catalogue: fedpop must be discoverable.
	methods, err := c.Methods(ctx)
	if err != nil {
		return fmt.Errorf("methods: %w", err)
	}
	seen := map[string]bool{}
	for _, m := range methods {
		seen[m.Name] = true
	}
	for _, want := range []string{"rs", "sha", "hb", "tpe", "fedpop"} {
		if !seen[want] {
			return fmt.Errorf("methods catalogue missing %q", want)
		}
	}
	log.Printf("methods ok (%d registered)", len(methods))

	// Run lifecycle: submit, stream to terminal, check result, dedup hit.
	req := client.RunRequest{Dataset: "cifar10", Method: "rs", Trials: 3, Seed: 11, Noise: client.Noise{SampleCount: 2}}
	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	log.Printf("submitted %s", st.ID)
	run, err := c.WaitRun(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("wait %s: %w", st.ID, err)
	}
	if run.State != "done" || run.Result == nil || run.Result.Best == nil {
		return fmt.Errorf("run %s finished %q (result %v)", st.ID, run.State, run.Result)
	}
	dup, err := c.SubmitRun(ctx, req)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if dup.ID != st.ID {
		return fmt.Errorf("identical submission got %s, want dedup onto %s", dup.ID, st.ID)
	}
	log.Print("run + dedup ok")

	// The finished run's trace must carry its pipeline phases under a trace ID.
	trace, err := c.Trace(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("trace %s: %w", st.ID, err)
	}
	if trace.TraceID == "" {
		return fmt.Errorf("run %s has no trace ID", st.ID)
	}
	for _, phase := range []string{"queue.wait", "oracle.trials", "response.encode"} {
		if trace.Span(phase) == nil {
			return fmt.Errorf("trace of %s missing %q span (got %d spans)", st.ID, phase, len(trace.Spans))
		}
	}
	log.Printf("trace ok (%s, %d spans)", trace.TraceID, len(trace.Spans))

	// Coded errors reach the client intact.
	if _, err := c.SubmitRun(ctx, client.RunRequest{Dataset: "cifar10", Method: "sgd"}); err == nil {
		return errors.New("unknown method was accepted")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != "unknown_method" {
			return fmt.Errorf("unknown method error = %v, want code unknown_method", err)
		}
	}

	// Ask/tell parity: a one-trial run and an externally driven session over
	// the same (dataset, method, noise, seed) must agree exactly.
	preq := client.RunRequest{Dataset: "cifar10", Method: "sha", Trials: 1, Seed: 5, Noise: client.Noise{SampleCount: 2}}
	pst, err := c.SubmitRun(ctx, preq)
	if err != nil {
		return fmt.Errorf("parity submit: %w", err)
	}
	prun, err := c.WaitRun(ctx, pst.ID)
	if err != nil {
		return fmt.Errorf("parity wait: %w", err)
	}
	sess, err := c.OpenSession(ctx, client.SessionRequest{Dataset: "cifar10", Method: "sha", Seed: 5, Noise: client.Noise{SampleCount: 2}})
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	log.Printf("opened %s (pool %d, budget %d rounds)", sess.ID, sess.PoolSize, sess.BudgetRounds)
	final, err := c.DriveSession(ctx, sess.ID, 0)
	if err != nil {
		return fmt.Errorf("drive session: %w", err)
	}
	if final.State != "done" || final.Best == nil {
		return fmt.Errorf("session finished %q with best %v", final.State, final.Best)
	}
	want := prun.Result.Best
	if final.Best.Config != want.Config || final.Best.Rounds != want.Rounds || final.Best.TrueErr != want.TrueErr {
		return fmt.Errorf("session best %+v != run best %+v", *final.Best, *want)
	}
	if len(final.Trials) < 2 {
		return fmt.Errorf("session log has %d trials, want several", len(final.Trials))
	}
	log.Printf("ask/tell parity ok (%d trials, best true err %.4f)", len(final.Trials), final.Best.TrueErr)

	// External session: evaluate a caller-chosen config by index and close.
	ext, err := c.OpenSession(ctx, client.SessionRequest{Dataset: "cifar10", Seed: 3, Noise: client.Noise{SampleCount: 2}})
	if err != nil {
		return fmt.Errorf("open external: %w", err)
	}
	idx := 0
	tr, err := c.Tell(ctx, ext.ID, client.TellRequest{Evaluate: []client.TellEval{{ConfigIndex: &idx}}})
	if err != nil {
		return fmt.Errorf("external tell: %w", err)
	}
	if len(tr.Results) != 1 || tr.SpentRounds == 0 {
		return fmt.Errorf("external tell = %+v", tr)
	}
	if _, err := c.CloseSession(ctx, ext.ID); err != nil {
		return fmt.Errorf("close session: %w", err)
	}
	log.Print("external session ok")

	// Post-e2e /metrics scrape: the traffic above must have moved both the
	// serving-plane admission counter and the hot-path oracle histogram.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range []string{"runs_admitted_total", "oracle_trial_seconds_bucket"} {
		if !seriesNonZero(metrics, series) {
			return fmt.Errorf("/metrics has no non-zero %s sample after e2e traffic", series)
		}
	}
	log.Print("metrics ok")
	return nil
}

// seriesNonZero reports whether any sample line of the named series carries a
// value greater than zero. Histogram series match by prefix, so labeled
// bucket lines ({le="..."}) count.
func seriesNonZero(exposition, series string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, series) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > 0 {
			return true
		}
	}
	return false
}
