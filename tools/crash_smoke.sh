#!/usr/bin/env sh
# Crash-recovery smoke test for noisyevald's durable run journal, shared by
# `make crash-smoke` and CI's crash-smoke job:
#
#   1. boot the daemon with -journal-dir and fire a batch of concurrent
#      submissions through tools/loadgen (recording every acknowledged run);
#   2. kill -9 the daemon mid-flight — some runs done, some running, some
#      queued — and append garbage to the WAL to simulate a torn final
#      record from the crash;
#   3. restart the daemon on the same journal and assert recovery: the
#      journal replayed (expvar journal_replayed > 0), the torn tail was
#      truncated and counted (journal_torn_tail = 1), interrupted runs were
#      re-admitted (runs_recovered > 0), and loadgen verify finds ZERO lost
#      runs — every acknowledged run reaches done, resubmissions dedup onto
#      the recorded IDs (no duplicate execution), and every result matches
#      an uninterrupted reference daemon byte for byte.
#
# Usage: tools/crash_smoke.sh [addr] [ref-addr] [cache-dir]
set -eu

ADDR="${1:-127.0.0.1:8725}"
REF_ADDR="${2:-127.0.0.1:8726}"
CACHE="${3:-$HOME/.cache/noisyeval-banks}"

WORK="$(mktemp -d)"
JOURNAL="$WORK/journal"
STATE="$WORK/runs.json"
DPID=""
RPID=""
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    [ -n "$RPID" ] && kill -9 "$RPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/noisyevald" ./cmd/noisyevald
go build -o "$WORK/loadgen" ./tools/loadgen

wait_health() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 120 ] && { echo "daemon on $1 never became healthy"; exit 1; }
        sleep 0.5
    done
}

expvar() { # expvar <addr> <name> — the map renders as one-line JSON
    curl -fsS "http://$1/debug/vars" | tr ',{}' '\n\n\n' | sed -n "s/^ *\"$2\": \([0-9][0-9]*\)*$/\1/p" | head -n 1
}

# Phase 1: boot with a journal and load it up. Oracle-backed runs finish in
# microseconds, so -exec-delay pads each execution: 24 runs x 400ms on two
# workers is ~5s of backlog, and the kill below lands on a mix of done,
# running, and queued runs every time.
"$WORK/noisyevald" -addr "$ADDR" -cache-dir "$CACHE" -journal-dir "$JOURNAL" -workers 2 -exec-delay 400ms &
DPID=$!
wait_health "$ADDR"
"$WORK/loadgen" -base "http://$ADDR" -mode submit -n 24 -conc 12 -state "$STATE" -max-p99 30s

# Give the workers a moment to finish a few runs (but not all 24), then
# crash hard: no drain, no fsync beyond what the journal already did.
sleep 2
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=""

# Torn tail: the crash "tore" the final WAL record.
printf '\125\000\000\000\336\255\276\357' >> "$JOURNAL/wal"

# Phase 2: restart on the same journal (same -exec-delay: config survives a
# restart), plus an uninterrupted reference daemon (journal-less, same bank
# cache, no delay) for byte-identical comparison.
"$WORK/noisyevald" -addr "$ADDR" -cache-dir "$CACHE" -journal-dir "$JOURNAL" -workers 2 -exec-delay 400ms &
DPID=$!
"$WORK/noisyevald" -addr "$REF_ADDR" -cache-dir "$CACHE" -workers 2 &
RPID=$!
wait_health "$ADDR"
wait_health "$REF_ADDR"

replayed="$(expvar "$ADDR" journal_replayed)"
torn="$(expvar "$ADDR" journal_torn_tail)"
recovered="$(expvar "$ADDR" runs_recovered)"
echo "after restart: journal_replayed=$replayed journal_torn_tail=$torn runs_recovered=$recovered"
[ "${replayed:-0}" -gt 0 ] || { echo "FAIL: journal_replayed = $replayed, want > 0"; exit 1; }
[ "${torn:-0}" -eq 1 ] || { echo "FAIL: journal_torn_tail = $torn, want 1"; exit 1; }
[ "${recovered:-0}" -gt 0 ] || { echo "FAIL: runs_recovered = $recovered, want > 0 (crash left nothing in flight?)"; exit 1; }

"$WORK/loadgen" -base "http://$ADDR" -mode verify -state "$STATE" -ref-base "http://$REF_ADDR" -conc 12

# Graceful exit still works after a recovery boot.
kill -TERM "$DPID"
wait "$DPID" || { echo "recovered daemon exited non-zero on SIGTERM"; exit 1; }
DPID=""
echo "crash smoke passed"
