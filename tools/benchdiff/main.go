// Command benchdiff compares a freshly generated benchmark JSON (bench2json
// output) against a committed baseline and fails when a gated benchmark
// regresses:
//
//   - ns/op beyond -max-regress (default 25%)
//   - B/op beyond -max-regress (same fraction; bytes are far less
//     machine-dependent than wall clock, so this catches quiet allocation
//     growth the timing gate would absorb)
//   - allocs/op leaving zero: a baseline of 0 allocs/op is a hard invariant
//     (a hot path engineered to be allocation-free), so ANY allocation is a
//     failure regardless of fractions
//   - allocs/op beyond -max-allocs-frac of baseline, when set
//   - a custom higher-is-better metric named in -metrics (e.g. trials/s)
//     dropping more than -max-metric-drop below baseline, when the metric is
//     present in both entries
//
// CI runs it after the bench smoke job so hot-path regressions fail the
// build instead of landing silently; `make bench-check` runs the identical
// gate locally.
//
//	benchdiff -baseline BENCH_baseline.json -latest BENCH_latest.json \
//	    -bench BenchmarkFederatedRound,BenchmarkBankBuild -max-regress 0.25
//
// Benchmarks named in -bench must exist in both files. With an empty -bench,
// every benchmark present in both files is compared (informational) and
// gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// minGatedBOp is the smallest baseline B/op the fractional byte gate
// applies to. Below it, per-op bytes are dominated by warmup amortization
// noise rather than steady-state allocation.
const minGatedBOp = 4096

// Entry mirrors bench2json's output schema.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// normalize strips the -GOMAXPROCS suffix so entries compare across machines
// with different core counts.
func normalize(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		suffix := name[i+1:]
		digits := len(suffix) > 0
		for _, r := range suffix {
			if r < '0' || r > '9' {
				digits = false
				break
			}
		}
		if digits {
			return name[:i]
		}
	}
	return name
}

func load(path string) (map[string]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Entry, len(entries))
	for _, e := range entries {
		out[normalize(e.Name)] = e
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	latestPath := flag.String("latest", "BENCH_latest.json", "freshly generated JSON")
	benchList := flag.String("bench", "", "comma-separated benchmark names to gate (empty = all common)")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression before failing")
	maxAllocsFrac := flag.Float64("max-allocs-frac", 0, "if > 0, fail when allocs/op exceeds this fraction of the baseline's (machine-independent, so it can gate much tighter than ns/op)")
	metricsList := flag.String("metrics", "", "comma-separated custom higher-is-better metrics (e.g. trials/s) gated when present in both entries")
	maxMetricDrop := flag.Float64("max-metric-drop", 0.25, "allowed fractional drop in a -metrics metric before failing")
	flag.Parse()

	var customMetrics []string
	if *metricsList != "" {
		for _, m := range strings.Split(*metricsList, ",") {
			if m = strings.TrimSpace(m); m != "" {
				customMetrics = append(customMetrics, m)
			}
		}
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	latest, err := load(*latestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	} else {
		for name := range base {
			if _, ok := latest[name]; ok {
				names = append(names, name)
			}
		}
	}

	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		b, okB := base[name]
		l, okL := latest[name]
		if !okB || !okL {
			fmt.Fprintf(os.Stderr, "benchdiff: %s missing from %s\n", name, map[bool]string{false: *baselinePath, true: *latestPath}[okB])
			failed = true
			continue
		}
		bn, ln := b.Metrics["ns/op"], l.Metrics["ns/op"]
		if bn <= 0 || ln <= 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %s has no ns/op metric\n", name)
			failed = true
			continue
		}
		ratio := ln / bn
		status := "ok"
		if ratio > 1+*maxRegress {
			status = fmt.Sprintf("REGRESSION > %.0f%%", *maxRegress*100)
			failed = true
		}
		// B/op regresses on the same fractional budget as ns/op. Bytes are
		// machine-independent, so this gate holds even when timing noise
		// hides an allocation-heavy change. Near-zero baselines are exempt:
		// a steady-state-zero-alloc benchmark's residual B/op is warmup
		// amortization (tens of bytes whose per-op share swings with b.N),
		// not signal — the zero-alloc gate below owns that regime.
		bb, lb := b.Metrics["B/op"], l.Metrics["B/op"]
		if bb >= minGatedBOp && lb > bb*(1+*maxRegress) {
			status = fmt.Sprintf("B/op REGRESSION (%.0f > %.0f%% of baseline %.0f)", lb, (1+*maxRegress)*100, bb)
			failed = true
		}
		ba, la := b.Metrics["allocs/op"], l.Metrics["allocs/op"]
		// Zero is a contract, not a measurement: a benchmark pinned at
		// 0 allocs/op fails on the first allocation, full stop.
		if _, tracked := b.Metrics["allocs/op"]; tracked && ba == 0 && la > 0 {
			status = fmt.Sprintf("ZERO-ALLOC REGRESSION (%.0f allocs/op, baseline 0)", la)
			failed = true
		}
		if *maxAllocsFrac > 0 && ba > 0 && la > ba**maxAllocsFrac {
			status = fmt.Sprintf("ALLOCS REGRESSION (%.0f > %.0f%% of baseline %.0f)", la, *maxAllocsFrac*100, ba)
			failed = true
		}
		// Custom metrics are throughput-style (higher is better): fail when
		// latest drops below (1 - max-metric-drop) of baseline. Gated only
		// when the metric is present in both entries so benchmarks that don't
		// report it are unaffected.
		var metricNotes []string
		for _, m := range customMetrics {
			bm, okBM := b.Metrics[m]
			lm, okLM := l.Metrics[m]
			if !okBM || !okLM || bm <= 0 {
				continue
			}
			metricNotes = append(metricNotes, fmt.Sprintf("%s %.0f -> %.0f", m, bm, lm))
			if lm < bm*(1-*maxMetricDrop) {
				status = fmt.Sprintf("%s REGRESSION (%.0f < %.0f%% of baseline %.0f)", m, lm, (1-*maxMetricDrop)*100, bm)
				failed = true
			}
		}
		fmt.Printf("%-32s %14.0f -> %14.0f ns/op  (%.2fx baseline", name, bn, ln, ratio)
		if bb > 0 || lb > 0 {
			fmt.Printf(", B/op %.0f -> %.0f", bb, lb)
		}
		if ba > 0 || la > 0 {
			fmt.Printf(", allocs %.0f -> %.0f", ba, la)
		}
		for _, note := range metricNotes {
			fmt.Printf(", %s", note)
		}
		fmt.Printf(")  %s\n", status)
	}
	if failed {
		os.Exit(1)
	}
}
