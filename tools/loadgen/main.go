// Command loadgen is the fault-injection load harness for noisyevald: it
// fires batches of concurrent run submissions at a daemon, records what was
// acknowledged in a state file, and later verifies — typically after the
// daemon was kill -9ed and restarted on its journal — that every
// acknowledged run still exists, reaches a terminal state, and produced the
// same result an uninterrupted daemon would have.
//
//	loadgen -base http://127.0.0.1:8723 -mode submit -n 50 -conc 16 -state runs.json
//	loadgen -base http://127.0.0.1:8723 -mode verify -state runs.json -ref-base http://127.0.0.1:8724
//
// Submit mode reports submission latency percentiles (p50/p90/p99); -max-p99
// turns the p99 into a hard bound. With -wait it also samples completed runs'
// span timelines (GET /v1/runs/{id}/trace) and reports a per-phase latency
// breakdown — queue.wait, bank.build, oracle.trials, response.encode, ... —
// so a latency regression names the phase that moved, not just the total;
// -max-p99-queue-wait turns the queue.wait p99 into a hard bound (admission
// is outpacing the worker pool). Verify mode exits non-zero if any
// recorded run was lost, failed, diverged from its recorded result, diverged
// from the reference daemon's result for the identical request, or stopped
// deduplicating (a resubmission must coalesce onto the recorded run ID, not
// execute twice).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	"noisyeval/pkg/client"
)

// entry is one acknowledged submission in the state file.
type entry struct {
	Request client.RunRequest `json:"request"`
	ID      string            `json:"id"`
	Key     string            `json:"key"`
	// Result is recorded in submit mode when -wait is set; verify mode then
	// additionally pins the post-restart result to it.
	Result *client.RunResult `json:"result,omitempty"`
}

type state struct {
	Entries []entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		base      = flag.String("base", "http://127.0.0.1:8723", "daemon base URL")
		mode      = flag.String("mode", "submit", "submit | verify")
		n         = flag.Int("n", 50, "submit: number of distinct runs to submit")
		conc      = flag.Int("conc", 16, "submit: concurrent submitters; verify: concurrent checkers")
		dataset   = flag.String("dataset", "cifar10", "submit: dataset")
		method    = flag.String("method", "rs", "submit: tuning method")
		trials    = flag.Int("trials", 2, "submit: bootstrap trials per run")
		seedBase  = flag.Uint64("seed-base", 1000, "submit: seeds are seed-base..seed-base+n-1 (distinct seeds = distinct runs)")
		statePath = flag.String("state", "", "state file recording acknowledged submissions (required)")
		wait      = flag.Bool("wait", false, "submit: wait for every run to finish and record results in the state file")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		refBase   = flag.String("ref-base", "", "verify: reference daemon; every request re-runs there and results must match exactly")
		maxP99    = flag.Duration("max-p99", 0, "submit: fail if submission latency p99 exceeds this (0 = report only)")
		maxP99QW  = flag.Duration("max-p99-queue-wait", 0, "submit: fail if the sampled queue.wait p99 exceeds this (requires -wait; 0 = report only)")
		traceN    = flag.Int("trace-sample", 16, "submit: completed runs to sample for the per-phase trace breakdown (0 = skip)")
	)
	flag.Parse()
	if *statePath == "" {
		log.Fatal("-state is required")
	}
	if *maxP99QW > 0 && !*wait {
		log.Fatal("-max-p99-queue-wait requires -wait (queue.wait spans exist only for executed runs)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*base)

	switch *mode {
	case "submit":
		if err := submit(ctx, c, *n, *conc, *dataset, *method, *trials, *seedBase, *statePath, *wait, *maxP99, *maxP99QW, *traceN); err != nil {
			log.Fatal(err)
		}
	case "verify":
		if err := verify(ctx, c, *statePath, *refBase, *conc); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
}

func submit(ctx context.Context, c *client.Client, n, conc int, dataset, method string, trials int, seedBase uint64, statePath string, wait bool, maxP99, maxP99QW time.Duration, traceN int) error {
	var (
		mu        sync.Mutex
		entries   = make([]entry, 0, n)
		latencies = make([]time.Duration, 0, n)
		firstErr  error
	)
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req := client.RunRequest{
			Dataset: dataset, Method: method, Trials: trials, Seed: seedBase + uint64(i),
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(req client.RunRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			st, err := c.SubmitRun(ctx, req)
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("submit seed %d: %w", req.Seed, err)
				}
				return
			}
			entries = append(entries, entry{Request: req, ID: st.ID, Key: st.Key})
			latencies = append(latencies, elapsed)
		}(req)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Request.Seed < entries[j].Request.Seed })

	p := percentiles(latencies)
	log.Printf("submitted %d runs: latency p50=%s p90=%s p99=%s", len(entries), p[0], p[1], p[2])
	if maxP99 > 0 && p[2] > maxP99 {
		return fmt.Errorf("submission p99 %s exceeds bound %s", p[2], maxP99)
	}

	if wait {
		for i := range entries {
			st, err := c.WaitRun(ctx, entries[i].ID)
			if err != nil {
				return fmt.Errorf("wait %s: %w", entries[i].ID, err)
			}
			if st.State != "done" {
				return fmt.Errorf("run %s finished %q (%s), want done", st.ID, st.State, st.Error)
			}
			entries[i].Result = st.Result
		}
		log.Printf("all %d runs done", len(entries))
		if err := traceBreakdown(ctx, c, entries, traceN, maxP99QW); err != nil {
			return err
		}
	}
	return writeState(statePath, state{Entries: entries})
}

// traceBreakdown samples up to traceN completed runs' span timelines and
// reports per-phase latency percentiles, attributing total latency to the
// phase that produced it. maxP99QW > 0 turns the queue.wait p99 into a hard
// bound. Runs whose trace came back empty (e.g. recovered across a daemon
// restart mid-harness) are skipped, not failed — absence of observability is
// not absence of correctness.
func traceBreakdown(ctx context.Context, c *client.Client, entries []entry, traceN int, maxP99QW time.Duration) error {
	if traceN <= 0 || len(entries) == 0 {
		return nil
	}
	// Sample evenly across the batch rather than taking a prefix: early
	// submissions see an empty queue, late ones see the full backlog.
	stride := 1
	if len(entries) > traceN {
		stride = len(entries) / traceN
	}
	phases := map[string][]time.Duration{}
	sampled := 0
	for i := 0; i < len(entries) && sampled < traceN; i += stride {
		tr, err := c.Trace(ctx, entries[i].ID)
		if err != nil {
			return fmt.Errorf("trace %s: %w", entries[i].ID, err)
		}
		if len(tr.Spans) == 0 {
			continue
		}
		sampled++
		for _, sp := range tr.Spans {
			phases[sp.Name] = append(phases[sp.Name], time.Duration(sp.DurationMS*float64(time.Millisecond)))
		}
	}
	if sampled == 0 {
		log.Printf("trace breakdown: no sampled run had a retained trace")
		return nil
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	log.Printf("per-phase latency over %d sampled traces:", sampled)
	for _, name := range names {
		p := percentiles(phases[name])
		log.Printf("  %-16s n=%-3d p50=%s p90=%s p99=%s", name, len(phases[name]), p[0], p[1], p[2])
	}
	if maxP99QW > 0 {
		qw := phases["queue.wait"]
		if len(qw) == 0 {
			return fmt.Errorf("-max-p99-queue-wait set but no sampled trace held a queue.wait span")
		}
		if p99 := percentiles(qw)[2]; p99 > maxP99QW {
			return fmt.Errorf("queue.wait p99 %s exceeds bound %s (admission outpacing the worker pool)", p99, maxP99QW)
		}
	}
	return nil
}

func verify(ctx context.Context, c *client.Client, statePath, refBase string, conc int) error {
	var st state
	raw, err := os.ReadFile(statePath)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("state file %s: %w", statePath, err)
	}
	if len(st.Entries) == 0 {
		return fmt.Errorf("state file %s holds no entries", statePath)
	}
	var ref *client.Client
	if refBase != "" {
		ref = client.New(refBase)
	}

	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	errs := make(chan error, len(st.Entries))
	for _, e := range st.Entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(e entry) {
			defer wg.Done()
			defer func() { <-sem }()
			errs <- verifyOne(ctx, c, ref, e)
		}(e)
	}
	wg.Wait()
	close(errs)
	var failed int
	for err := range errs {
		if err != nil {
			failed++
			log.Printf("FAIL: %v", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d runs failed verification", failed, len(st.Entries))
	}
	log.Printf("verified %d runs: none lost, all done, results intact", len(st.Entries))
	return nil
}

// verifyOne checks a single recorded run end to end: still present, reaches
// done, result matches the recorded one (if any) and the reference daemon's
// (if any), and an identical resubmission coalesces onto it instead of
// executing twice.
func verifyOne(ctx context.Context, c, ref *client.Client, e entry) error {
	st, err := waitTerminal(ctx, c, e.ID)
	if err != nil {
		return fmt.Errorf("run %s (seed %d): %w", e.ID, e.Request.Seed, err)
	}
	if st.State != "done" {
		return fmt.Errorf("run %s: state %q (%s), want done", e.ID, st.State, st.Error)
	}
	if st.Result == nil {
		return fmt.Errorf("run %s: done without a result", e.ID)
	}
	if e.Result != nil && !reflect.DeepEqual(st.Result, e.Result) {
		return fmt.Errorf("run %s: result diverged from the recorded pre-crash result", e.ID)
	}
	resub, err := c.SubmitRun(ctx, e.Request)
	if err != nil {
		return fmt.Errorf("resubmit seed %d: %w", e.Request.Seed, err)
	}
	if resub.ID != e.ID {
		return fmt.Errorf("resubmit seed %d: got fresh run %s, want dedup onto %s (duplicate execution)", e.Request.Seed, resub.ID, e.ID)
	}
	if ref != nil {
		rst, err := ref.SubmitRun(ctx, e.Request)
		if err != nil {
			return fmt.Errorf("reference submit seed %d: %w", e.Request.Seed, err)
		}
		rst, err = waitTerminal(ctx, ref, rst.ID)
		if err != nil {
			return fmt.Errorf("reference run seed %d: %w", e.Request.Seed, err)
		}
		if !reflect.DeepEqual(st.Result, rst.Result) {
			return fmt.Errorf("run %s: result diverged from the uninterrupted reference daemon's", e.ID)
		}
	}
	return nil
}

// waitTerminal polls a run until it reaches a terminal state. Polling (not
// the event stream) keeps verification robust right after a restart, when
// recovered runs may still be queued behind each other.
func waitTerminal(ctx context.Context, c *client.Client, id string) (client.RunStatus, error) {
	for {
		st, err := c.GetRun(ctx, id)
		if err != nil {
			return client.RunStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return client.RunStatus{}, fmt.Errorf("still %q: %w", st.State, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func percentiles(d []time.Duration) [3]time.Duration {
	if len(d) == 0 {
		return [3]time.Duration{}
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return [3]time.Duration{at(0.50), at(0.90), at(0.99)}
}

func writeState(path string, st state) error {
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
