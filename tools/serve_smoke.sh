#!/usr/bin/env sh
# End-to-end smoke test for the noisyevald tuning daemon, shared by
# `make serve-smoke` and CI's serve job: boot the daemon, then run the
# tools/servesmoke exerciser against it over pkg/client — health wait, one
# quick run streamed to completion with a dedup check, the /v1/methods
# catalogue, and an ask/tell session driven over the wire whose best must
# match the server-driven run exactly — then drain gracefully via SIGTERM.
#
# Usage: tools/serve_smoke.sh [addr] [cache-dir]
set -eu

ADDR="${1:-127.0.0.1:8723}"
CACHE="${2:-$HOME/.cache/noisyeval-banks}"

go build -o /tmp/noisyevald-smoke ./cmd/noisyevald
go build -o /tmp/servesmoke ./tools/servesmoke
/tmp/noisyevald-smoke -addr "$ADDR" -cache-dir "$CACHE" -session-ttl 5m &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true' EXIT

/tmp/servesmoke -base "http://$ADDR"

kill -TERM $PID
wait $PID || { echo "daemon exited non-zero on SIGTERM"; exit 1; }
trap - EXIT
echo "serve smoke passed"
