#!/usr/bin/env sh
# End-to-end smoke test for the noisyevald tuning daemon, shared by
# `make serve-smoke` and CI's serve job: boot the daemon, wait on /healthz,
# submit one quick-scale run, stream its events to the terminal state, check
# the result payload and a dedup hit, then drain gracefully via SIGTERM.
#
# Usage: tools/serve_smoke.sh [addr] [cache-dir]
set -eu

ADDR="${1:-127.0.0.1:8723}"
CACHE="${2:-$HOME/.cache/noisyeval-banks}"
BODY='{"dataset":"cifar10","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}'

go build -o /tmp/noisyevald-smoke ./cmd/noisyevald
/tmp/noisyevald-smoke -addr "$ADDR" -cache-dir "$CACHE" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true' EXIT

i=0
until curl -sf --max-time 5 "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  [ $i -gt 100 ] && { echo "daemon never became healthy"; exit 1; }
  sleep 0.2
done
echo "healthz ok"

ID=$(curl -sf --max-time 30 -X POST "http://$ADDR/v1/runs" -d "$BODY" |
  sed -n 's/.*"id": "\(run-[0-9]*\)".*/\1/p')
[ -n "$ID" ] || { echo "submit returned no run id"; exit 1; }
echo "submitted $ID"

# The event stream ends at the terminal event; require it to be "done".
curl -sfN --max-time 300 "http://$ADDR/v1/runs/$ID/events" | tail -n 1 | grep -q '"state":"done"' ||
  { echo "run did not reach done"; exit 1; }
echo "run done"

curl -sf --max-time 30 "http://$ADDR/v1/runs/$ID" | grep -q '"median_err"' ||
  { echo "result missing median_err"; exit 1; }

# An identical resubmission must be a dedup hit on the same run.
curl -sf --max-time 30 -X POST "http://$ADDR/v1/runs" -d "$BODY" | grep -q "\"id\": \"$ID\"" ||
  { echo "identical submission was not deduplicated"; exit 1; }
echo "dedup ok"

curl -sf --max-time 30 "http://$ADDR/v1/banks" | grep -q '"key"' || { echo "no cached banks listed"; exit 1; }
curl -sf --max-time 30 "http://$ADDR/debug/vars" | grep -q '"runs_completed": 1' ||
  { echo "counters wrong"; exit 1; }

kill -TERM $PID
wait $PID || { echo "daemon exited non-zero on SIGTERM"; exit 1; }
trap - EXIT
echo "serve smoke passed"
