// Proxy transfer: reproduce the paper's §4 proposal at example scale — when
// federated evaluation is very noisy, tuning on public server-side proxy
// data (one-shot proxy RS) can beat tuning on the real clients.
//
// Two image populations play client and proxy (CIFAR10-like and
// FEMNIST-like, the paper's well-matched pair). Both banks are built over
// the SAME config pool, so hyperparameter transfer is measured config-by-
// config, as in Figures 10-12.
//
// Run with: go run ./examples/proxy_transfer
package main

import (
	"fmt"
	"log"
	"sort"

	"noisyeval"
)

func main() {
	shared := noisyeval.DefaultSpace().SampleN(24, noisyeval.NewRNG(100).Split("pool"))

	build := func(spec noisyeval.DataSpec, seed uint64) *noisyeval.Bank {
		pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(seed))
		opts := noisyeval.DefaultBuildOptions()
		opts.Configs = shared
		opts.MaxRounds = 81
		bank, err := noisyeval.BuildBank(pop, opts, seed+1)
		if err != nil {
			log.Fatal(err)
		}
		return bank
	}

	fmt.Println("building client bank (cifar10-like) and proxy bank (femnist-like)...")
	client := build(noisyeval.CIFAR10Like().Scaled(0.25, 0), 1)
	proxy := build(noisyeval.FEMNISTLike().Scaled(0.05, 0), 2)

	// How well do hyperparameters transfer? Rank the shared configs on each.
	fmt.Println("\nconfig-by-config transfer (final full-validation error):")
	fmt.Printf("%-8s %-12s %-12s\n", "config", "client err", "proxy err")
	for i := 0; i < 6; i++ {
		co, _ := noisyeval.NewBankOracle(client, 0, noisyeval.NoiselessScheme(), 1)
		po, _ := noisyeval.NewBankOracle(proxy, 0, noisyeval.NoiselessScheme(), 1)
		fmt.Printf("%-8d %-12.1f %-12.1f\n", i,
			co.TrueError(shared[i], 81)*100, po.TrueError(shared[i], 81)*100)
	}

	budget := noisyeval.Budget{TotalRounds: 8 * 81, MaxPerConfig: 81, K: 8}
	const trials = 30

	// Baseline 1: RS on the client data under severe noise (1 client, eps=1).
	noise := noisyeval.Noise{SampleCount: 1, Epsilon: 1}
	oracle, err := noisyeval.NewBankOracle(client, 0, noise.Scheme(), 5)
	if err != nil {
		log.Fatal(err)
	}
	noisyTuner := noisyeval.Tuner{
		Method:   noisyeval.RandomSearch{},
		Space:    noisyeval.DefaultSpace(),
		Settings: noise.Settings(noisyeval.Settings{Budget: budget}),
	}
	noisyFinals := noisyeval.FinalErrors(noisyTuner.RunTrials(oracle, trials, noisyeval.NewRNG(6)))

	// Baseline 2: one-shot proxy RS — tune on the proxy bank (noise-free,
	// it is server-side public data), train one config on the client.
	proxyOracle, _ := noisyeval.NewBankOracle(proxy, 0, noisyeval.NoiselessScheme(), 7)
	clientOracle, _ := noisyeval.NewBankOracle(client, 0, noisyeval.NoiselessScheme(), 7)
	m := noisyeval.OneShotProxyRS{Proxy: proxyOracle}
	proxyFinals := make([]float64, trials)
	g := noisyeval.NewRNG(8)
	for t := range proxyFinals {
		h := m.Run(clientOracle, noisyeval.DefaultSpace(),
			noisyeval.Settings{Budget: budget}, g.Splitf("trial-%d", t))
		if rec, ok := h.Recommend(); ok {
			proxyFinals[t] = rec.True
		} else {
			proxyFinals[t] = 1
		}
	}

	fmt.Printf("\nmedian client error over %d trials:\n", trials)
	fmt.Printf("  RS on clients, severe noise (1 client, eps=1): %.1f%%\n", median(noisyFinals)*100)
	fmt.Printf("  one-shot proxy RS (tuned on femnist-like):     %.1f%%\n", median(proxyFinals)*100)
	fmt.Println("\nExpected shape (paper Fig. 12 / Observation 8): under severe evaluation")
	fmt.Println("noise the proxy baseline wins — it never touches noisy client evals.")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
