// Noisy tuning: reproduce the paper's headline phenomenon (Figure 1 /
// Observation 6) at example scale — under combined subsampling + privacy
// noise, sophisticated tuners (Hyperband, BOHB) lose their advantage over
// plain random search.
//
// The example builds a config bank for a CIFAR10-like population (training
// 24 configurations once), then compares four tuning methods under
// noiseless and noisy evaluation using bootstrap trials over the bank —
// exactly the paper's protocol.
//
// Run with: go run ./examples/noisy_tuning
package main

import (
	"fmt"
	"log"
	"sort"

	"noisyeval"
)

func main() {
	spec := noisyeval.CIFAR10Like().Scaled(0.25, 0) // 100 train / 25 eval clients
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))

	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 24
	opts.MaxRounds = 81 // rungs {1, 3, 9, 27, 81}
	fmt.Println("building config bank (24 configs x 81 rounds)...")
	bank, err := noisyeval.BuildBank(pop, opts, 7)
	if err != nil {
		log.Fatal(err)
	}

	budget := noisyeval.Budget{TotalRounds: 8 * 81, MaxPerConfig: 81, K: 8}
	methods := []noisyeval.Method{
		noisyeval.RandomSearch{},
		noisyeval.TPE{},
		noisyeval.Hyperband{},
		noisyeval.BOHB{},
	}

	settings := map[string]noisyeval.Noise{
		"noiseless":                {},
		"noisy (1 client, eps=50)": {SampleCount: 1, Epsilon: 50},
	}

	const trials = 20
	fmt.Printf("\n%-10s %-26s %s\n", "method", "setting", "median true error (20 trials)")
	names := make([]string, 0, len(settings))
	for name := range settings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, m := range methods {
		for _, name := range names {
			noise := settings[name]
			oracle, err := noisyeval.NewBankOracle(bank, 0, noise.Scheme(), 3)
			if err != nil {
				log.Fatal(err)
			}
			tuner := noisyeval.Tuner{
				Method:   m,
				Space:    noisyeval.DefaultSpace(),
				Settings: noise.Settings(noisyeval.Settings{Budget: budget}),
			}
			results := tuner.RunTrials(oracle, trials, noisyeval.NewRNG(9).Split(m.Name()+name))
			finals := noisyeval.FinalErrors(results)
			sort.Float64s(finals)
			median := finals[len(finals)/2]
			fmt.Printf("%-10s %-26s %.1f%%\n", m.Name(), name, median*100)
		}
	}
	fmt.Println("\nExpected shape (paper Fig. 1/8): every method degrades under noise,")
	fmt.Println("and the multi-fidelity methods (HB, BOHB) lose the most — their many")
	fmt.Println("low-fidelity evaluations are exactly what subsampling and DP corrupt.")
}
