// Quickstart: tune federated hyperparameters on a small CIFAR10-like
// population with random search against the LIVE simulator (no pre-trained
// bank): every evaluation actually trains a model with FedAdam + client SGD
// and evaluates it on sampled validation clients.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"noisyeval"
)

func main() {
	// A scaled-down CIFAR10-like federated population: Dirichlet(0.1) label
	// skew across clients, disjoint train/validation client pools.
	spec := noisyeval.CIFAR10Like().Scaled(0.15, 0) // 60 train / 15 eval clients
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))
	fmt.Printf("population: %d train clients, %d validation clients\n", len(pop.Train), len(pop.Val))

	// A live oracle: evaluations subsample 5 validation clients per call
	// (the noise source the paper studies first). Training runs up to 27
	// rounds per configuration at this scale.
	oracle, err := noisyeval.NewLiveOracle(
		pop,
		noisyeval.DefaultTrainerOptions(),
		noisyeval.SchemeWithCount(5),
		27, // max rounds per config
		3,  // eta (checkpoint grid)
		4,  // checkpoint levels -> rungs {1, 3, 9, 27}
		42, // evaluation seed
	)
	if err != nil {
		log.Fatal(err)
	}

	// Random search over the paper's Appendix-B space: K = 6 configurations,
	// each trained for 27 rounds.
	tuner := noisyeval.Tuner{
		Method: noisyeval.RandomSearch{},
		Space:  noisyeval.DefaultSpace(),
		Settings: noisyeval.Settings{
			Budget: noisyeval.Budget{TotalRounds: 6 * 27, MaxPerConfig: 27, K: 6},
		},
	}
	history := tuner.Run(oracle, noisyeval.NewRNG(2))

	fmt.Println("\nsearch trace (observed = 5-client subsample, true = full validation):")
	for i, obs := range history.Observations {
		fmt.Printf("  config %d: server lr %-10.3g client lr %-10.3g batch %-4d observed %5.1f%%  true %5.1f%%\n",
			i, obs.Config.ServerLR, obs.Config.ClientLR, obs.Config.BatchSize,
			obs.Observed*100, obs.True*100)
	}

	best, ok := history.Recommend()
	if !ok {
		log.Fatal("no recommendation")
	}
	fmt.Printf("\nchosen configuration (by noisy evaluation):\n")
	fmt.Printf("  server lr %.3g (beta1 %.2f, beta2 %.3f), client lr %.3g (momentum %.2f), batch %d\n",
		best.Config.ServerLR, best.Config.Beta1, best.Config.Beta2,
		best.Config.ClientLR, best.Config.ClientMomentum, best.Config.BatchSize)
	fmt.Printf("  true full-validation error: %.1f%%\n", best.True*100)
}
