// Privacy sweep: reproduce the paper's §3.3 privacy experiment (Figure 9 /
// Observation 5) at example scale — evaluation privacy makes tuning
// dramatically harder unless enough clients are sampled per evaluation,
// because the Laplace scale is M/(ε·|S|).
//
// Run with: go run ./examples/privacy_sweep
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"noisyeval"
)

func main() {
	spec := noisyeval.CIFAR10Like().Scaled(0.5, 0) // 200 train / 50 eval clients
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))

	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 24
	opts.MaxRounds = 81
	fmt.Println("building config bank (24 configs x 81 rounds)...")
	bank, err := noisyeval.BuildBank(pop, opts, 3)
	if err != nil {
		log.Fatal(err)
	}

	budget := noisyeval.Budget{TotalRounds: 8 * 81, MaxPerConfig: 81, K: 8}
	epsilons := []float64{0.1, 1, 10, 100, math.Inf(1)}
	sampleCounts := []int{1, 5, 25, 50}
	const trials = 30

	fmt.Printf("\nmedian true error (%%) of RS over %d trials\n", trials)
	fmt.Printf("%-10s", "eps\\|S|")
	for _, c := range sampleCounts {
		fmt.Printf("%8d", c)
	}
	fmt.Println()
	for _, eps := range epsilons {
		label := fmt.Sprintf("%g", eps)
		if math.IsInf(eps, 1) {
			label = "inf"
		}
		fmt.Printf("%-10s", label)
		for _, count := range sampleCounts {
			noise := noisyeval.Noise{SampleCount: count, Epsilon: eps}
			oracle, err := noisyeval.NewBankOracle(bank, 0, noise.Scheme(), 4)
			if err != nil {
				log.Fatal(err)
			}
			tuner := noisyeval.Tuner{
				Method:   noisyeval.RandomSearch{},
				Space:    noisyeval.DefaultSpace(),
				Settings: noise.Settings(noisyeval.Settings{Budget: budget}),
			}
			results := tuner.RunTrials(oracle, trials, noisyeval.NewRNG(5).Splitf("%v-%d", eps, count))
			finals := noisyeval.FinalErrors(results)
			sort.Float64s(finals)
			fmt.Printf("%8.1f", finals[len(finals)/2]*100)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper Fig. 9): error falls to the right (more clients")
	fmt.Println("per evaluation) and falls downward (looser privacy); the top-left corner")
	fmt.Println("(strict privacy, single client) approaches random config selection.")
}
