// Heterogeneity audit: beyond-average analysis of tuned configurations,
// following the paper's §6 future-work directions — tail performance under
// heterogeneity ("it would be useful to explore the effect of heterogeneity
// in HP evaluation on tail performance") and a noise-aware BO method
// (posterior-averaging Thompson sampling standing in for KG/NEI).
//
// The audit shows two things on a CIFAR10-like population:
//  1. configurations with similar average error can have wildly different
//     90th-percentile (tail) client error, and
//  2. under 1-client evaluation noise, the noise-aware tuner picks better
//     configurations than plain RS and than Hyperband.
//
// Run with: go run ./examples/heterogeneity_audit
package main

import (
	"fmt"
	"log"
	"sort"

	"noisyeval"
)

func main() {
	spec := noisyeval.CIFAR10Like().Scaled(0.3, 0) // 120 train / 30 eval clients
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))

	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 24
	opts.MaxRounds = 81
	fmt.Println("building config bank (24 configs x 81 rounds)...")
	bank, err := noisyeval.BuildBank(pop, opts, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: average vs tail error across the pool.
	fmt.Println("\naverage vs tail error (top 8 configs by average):")
	fmt.Printf("%-8s %-12s %-14s %-14s\n", "config", "avg err", "p90 tail err", "worst client")
	type row struct {
		idx              int
		avg, tail, worst float64
	}
	var rows []row
	oracle, err := noisyeval.NewBankOracle(bank, 0, noisyeval.NoiselessScheme(), 1)
	if err != nil {
		log.Fatal(err)
	}
	for ci := range bank.Configs {
		errs, err := bank.ClientErrors(0, ci, bank.MaxRounds())
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			idx:   ci,
			avg:   oracle.TrueError(bank.Configs[ci], bank.MaxRounds()),
			tail:  noisyeval.TailError(errs, 0.9),
			worst: noisyeval.WorstClientError(errs),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].avg < rows[j].avg })
	for _, r := range rows[:8] {
		fmt.Printf("%-8d %-12.1f %-14.1f %-14.1f\n", r.idx, r.avg*100, r.tail*100, r.worst*100)
	}
	fmt.Println("note the spread: similar averages can hide very different tails.")

	// Part 2: noise-aware tuning under 1-client evaluation.
	budget := noisyeval.Budget{TotalRounds: 8 * 81, MaxPerConfig: 81, K: 8}
	noise := noisyeval.Noise{SampleCount: 1}
	const trials = 30

	fmt.Printf("\nmedian chosen-config error under 1-client evaluation (%d trials):\n", trials)
	for _, m := range []noisyeval.Method{
		noisyeval.RandomSearch{},
		noisyeval.Hyperband{},
		noisyeval.ResampledRS{Reps: 3},
		noisyeval.NoisyBO{},
	} {
		o, err := noisyeval.NewBankOracle(bank, 0, noise.Scheme(), 5)
		if err != nil {
			log.Fatal(err)
		}
		tn := noisyeval.Tuner{
			Method:   m,
			Space:    noisyeval.DefaultSpace(),
			Settings: noise.Settings(noisyeval.Settings{Budget: budget}),
		}
		finals := noisyeval.FinalErrors(tn.RunTrials(o, trials, noisyeval.NewRNG(6).Split(m.Name())))
		sort.Float64s(finals)
		fmt.Printf("  %-12s %.1f%%\n", m.Name(), finals[len(finals)/2]*100)
	}
	fmt.Println("\nExpected shape: the noise-aware methods (RS+reeval, NoisyBO) recover")
	fmt.Println("part of the gap that subsampling noise opens for RS and Hyperband.")
}
