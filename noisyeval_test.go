package noisyeval_test

import (
	"math"
	"testing"

	"noisyeval"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: generate a population, build a bank, tune under noise, inspect the
// result.
func TestFacadeEndToEnd(t *testing.T) {
	spec := noisyeval.CIFAR10Like().Scaled(0.08, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))
	if len(pop.Train) == 0 || len(pop.Val) == 0 {
		t.Fatal("empty population")
	}

	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 6
	opts.MaxRounds = 9
	bank, err := noisyeval.BuildBank(pop, opts, 2)
	if err != nil {
		t.Fatal(err)
	}

	noise := noisyeval.Noise{SampleCount: 2, Epsilon: 100}
	oracle, err := noisyeval.NewBankOracle(bank, 0, noise.Scheme(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tuner := noisyeval.Tuner{
		Method: noisyeval.RandomSearch{},
		Space:  noisyeval.DefaultSpace(),
		Settings: noise.Settings(noisyeval.Settings{
			Budget: noisyeval.Budget{TotalRounds: 4 * 9, MaxPerConfig: 9, K: 4},
		}),
	}
	results := tuner.RunTrials(oracle, 6, noisyeval.NewRNG(4))
	if len(results) != 6 {
		t.Fatalf("trials = %d", len(results))
	}
	for _, r := range results {
		if r.FinalTrue < 0 || r.FinalTrue > 1 || math.IsNaN(r.FinalTrue) {
			t.Errorf("trial %d final = %v", r.Trial, r.FinalTrue)
		}
	}
}

// TestFacadeLiveTraining exercises the live (bank-free) path.
func TestFacadeLiveTraining(t *testing.T) {
	spec := noisyeval.CIFAR10Like().Scaled(0.06, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 15, 10, 20
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(5))
	hp := noisyeval.HParams{ServerLR: 0.02, Beta1: 0.9, Beta2: 0.99, ClientLR: 0.1, BatchSize: 8}
	tr, err := noisyeval.NewTrainer(pop, hp, noisyeval.DefaultTrainerOptions(), noisyeval.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.FullValidationError(true)
	tr.TrainTo(20)
	if after := tr.FullValidationError(true); after >= before {
		t.Errorf("error did not improve: %.3f -> %.3f", before, after)
	}
}

// TestFacadeSchemeHelpers sanity-checks the helper constructors.
func TestFacadeSchemeHelpers(t *testing.T) {
	s := noisyeval.SchemeWithCount(7)
	if s.Count != 7 || !s.Weighted {
		t.Errorf("SchemeWithCount = %+v", s)
	}
	if !noisyeval.NoiselessScheme().IsFull(10) {
		t.Error("NoiselessScheme should be full evaluation")
	}
	if noisyeval.NoiselessSetting().Private() {
		t.Error("NoiselessSetting should be non-private")
	}
}

// TestFacadeRungRounds checks the re-exported checkpoint helper matches the
// paper's grid.
func TestFacadeRungRounds(t *testing.T) {
	got := noisyeval.RungRounds(405, 3, 5)
	want := []int{5, 15, 45, 135, 405}
	if len(got) != len(want) {
		t.Fatalf("rungs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rungs = %v", got)
		}
	}
}
