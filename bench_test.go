// Benchmark harness: one benchmark per table/figure of the paper (quick
// scale — identical code paths to the figure-scale cmd/figures run), plus
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Figure-scale outputs come from: go run ./cmd/figures
package noisyeval_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"noisyeval"
	"noisyeval/internal/core"
	"noisyeval/internal/eval"
	"noisyeval/internal/exper"
	"noisyeval/internal/hpo"
	"noisyeval/internal/obs"
	"noisyeval/internal/rng"
	"noisyeval/internal/serve"
	"noisyeval/internal/stats"
)

var (
	suiteOnce sync.Once
	suiteVal  *exper.Suite
)

// benchSuite builds the shared quick-scale suite (bank construction is the
// one-time cost; every benchmark then resamples from the banks, exactly as
// the paper's analysis pipeline does). When NOISYEVAL_CACHE_DIR is set (as
// in CI, where the directory persists across runs via actions/cache), banks
// come from the content-addressed store instead of being retrained.
func benchSuite(b *testing.B) *exper.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal = exper.NewSuite(exper.Quick())
		if dir := os.Getenv("NOISYEVAL_CACHE_DIR"); dir != "" {
			store, err := core.NewBankStore(dir)
			if err == nil {
				suiteVal.SetStore(store)
			}
		}
		// Force-build the four dataset banks outside benchmark timing.
		for _, name := range exper.DatasetNames {
			suiteVal.Bank(name)
		}
	})
	return suiteVal
}

func benchFigure(b *testing.B, id string) {
	s := benchSuite(b)
	driver := exper.AllFigures()[id]
	if driver == nil {
		b.Fatalf("unknown figure %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := driver(s)
		if len(res.CSVRows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTableDatasets regenerates Tables 1/2 (dataset statistics).
func BenchmarkTableDatasets(b *testing.B) { benchFigure(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (headline noiseless-vs-noisy bars).
func BenchmarkFigure1(b *testing.B) { benchFigure(b, "figure1") }

// BenchmarkFigure3 regenerates Figure 3 (RS vs subsample size).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, "figure3") }

// BenchmarkFigure4 regenerates Figure 4 (data heterogeneity x subsampling).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "figure4") }

// BenchmarkFigure5 regenerates Figure 5 (error vs training budget).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "figure5") }

// BenchmarkFigure6 regenerates Figure 6 (systems heterogeneity bias).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "figure6") }

// BenchmarkFigure7 regenerates Figure 7 (full vs min-client error scatter).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, "figure7") }

// BenchmarkFigure8 regenerates Figure 8 (methods, noiseless vs noisy).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "figure8") }

// BenchmarkFigure9 regenerates Figure 9 (privacy budget x subsampling).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, "figure9") }

// BenchmarkFigure10 regenerates Figure 10 (matched-pair HP transfer).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "figure10") }

// BenchmarkFigure11 regenerates Figure 11 (one-shot proxy RS matrix).
func BenchmarkFigure11(b *testing.B) { benchFigure(b, "figure11") }

// BenchmarkFigure12 regenerates Figure 12 (proxy vs noisy evaluation).
func BenchmarkFigure12(b *testing.B) { benchFigure(b, "figure12") }

// BenchmarkFigure13 regenerates Figure 13 (search-space width, Appendix C).
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "figure13") }

// BenchmarkFigure14 regenerates Figure 14 (mismatched-pair transfer).
func BenchmarkFigure14(b *testing.B) { benchFigure(b, "figure14") }

// BenchmarkFigure15 regenerates Figure 15 (method bars at 1/3 budget).
func BenchmarkFigure15(b *testing.B) { benchFigure(b, "figure15") }

// BenchmarkFigure16 regenerates Figure 16 (method bars at full budget).
func BenchmarkFigure16(b *testing.B) { benchFigure(b, "figure16") }

// --- Substrate micro-benchmarks ---

// BenchmarkFederatedRound measures one federated training round (10-client
// cohort, local SGD, FedAdam aggregation) on the CIFAR10-like population.
func BenchmarkFederatedRound(b *testing.B) {
	pop := noisyeval.MustGenerate(noisyeval.CIFAR10Like().Scaled(0.15, 0), noisyeval.NewRNG(1))
	hp := noisyeval.HParams{ServerLR: 0.01, Beta1: 0.9, Beta2: 0.99, ClientLR: 0.1, BatchSize: 32}
	tr, err := noisyeval.NewTrainer(pop, hp, noisyeval.DefaultTrainerOptions(), noisyeval.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Round()
	}
}

// BenchmarkBankEvaluation measures one noisy bank evaluation (subsample +
// weighted aggregate), the inner loop of every experiment.
func BenchmarkBankEvaluation(b *testing.B) {
	s := benchSuite(b)
	bank := s.Bank("cifar10")
	oracle, err := core.NewBankOracle(bank, 0, noisyeval.SchemeWithCount(3), 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bank.Configs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.Evaluate(cfg, bank.MaxRounds(), "bench")
	}
}

// BenchmarkBankBuild measures building a miniature config bank end to end
// (the one-time artifact cost every experiment amortizes).
func BenchmarkBankBuild(b *testing.B) {
	spec := noisyeval.CIFAR10Like().Scaled(0.06, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))
	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 4
	opts.MaxRounds = 9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noisyeval.BuildBank(pop, opts, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistAssemble measures reassembling a sharded bank build — the
// dist coordinator's hot path once worker shards arrive (training excluded:
// the shards are built once outside the timer). Reported alongside a
// shard-throughput metric (config-ranges merged per second).
func BenchmarkDistAssemble(b *testing.B) {
	spec := noisyeval.CIFAR10Like().Scaled(0.06, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(1))
	opts := noisyeval.DefaultBuildOptions()
	opts.NumConfigs = 8
	opts.MaxRounds = 9
	opts.Partitions = []float64{0.5}
	plan, err := core.NewBuildPlan(pop, opts, 5)
	if err != nil {
		b.Fatal(err)
	}
	var shards []*core.BankShard
	for _, r := range core.ShardRanges(plan.NumConfigs(), 2) {
		sh, err := plan.TrainRange(r[0], r[1], 0)
		if err != nil {
			b.Fatal(err)
		}
		shards = append(shards, sh)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AssembleBank(plan, shards); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(shards))/b.Elapsed().Seconds(), "shards/s")
}

// BenchmarkServeRun measures warm-cache throughput of the noisyevald serving
// path: after one run completes, every identical POST /v1/runs is absorbed
// by the content-addressed run key and answered from the cached result bytes
// — the requests/sec a tuning service sustains on its hot path (no bank
// training, no tuning, full HTTP round trip).
func BenchmarkServeRun(b *testing.B) {
	cfg := exper.Quick()
	cfg.Scales = map[string]float64{"cifar10": 0.06, "femnist": 0.02, "stackoverflow": 0.002, "reddit": 0.0008}
	cfg.CapExamples, cfg.BankConfigs, cfg.MaxRounds, cfg.K = 30, 6, 9, 4
	dir := os.Getenv("NOISYEVAL_CACHE_DIR")
	if dir == "" {
		dir = b.TempDir()
	}
	store, err := core.NewBankStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	mgr := serve.NewManager(serve.Options{
		Store: store, Workers: 2,
		Scales: map[string]exper.Config{"quick": cfg},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	ts := httptest.NewServer(serve.NewServer(mgr))
	defer ts.Close()

	const body = `{"dataset":"cifar10","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}`
	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		return resp
	}

	// Warm: submit once and stream events until the run is terminal.
	resp := post()
	var st serve.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	eresp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, eresp.Body) // EOF = terminal event delivered
	eresp.Body.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := post()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warm submit status = %d, want 200 (dedup hit)", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if n := mgr.BankBuilds(); n > 1 {
		b.Fatalf("warm-cache benchmark trained %d banks", n)
	}
}

// --- Bank codec and oracle-trial benchmarks (DESIGN.md §9) ---

// codecBenchBank builds a synthetic bank shaped like a mid-scale artifact
// (3 partitions x 64 configs x 5 checkpoints x 400 clients ≈ 3 MB arena)
// without any training: the error values are small-denominator fractions,
// mimicking the compressibility of real recorded errors. Used by the
// encode/decode benchmarks so their numbers do not depend on trainer speed
// or the bank cache.
var codecBenchBank = func() *core.Bank {
	const parts, configs, ckpts, clients = 3, 64, 5, 400
	g := rng.New(42)
	b := &core.Bank{
		SpecName:   "codec-bench",
		Seed:       42,
		Configs:    hpo.DefaultSpace().SampleN(configs, g.Split("pool")),
		Rounds:     []int{5, 15, 45, 135, 405},
		Partitions: []float64{0, 0.5, 1},
		Errs:       core.NewErrMatrix(parts, configs, ckpts, clients),
		Diverged:   make([]bool, configs),
	}
	b.ExampleCounts = make([][]int, parts)
	counts := make([]int, clients)
	for k := range counts {
		counts[k] = 15 + g.IntN(20)
	}
	for pi := range b.ExampleCounts {
		b.ExampleCounts[pi] = counts
	}
	for i := range b.Errs.Data {
		n := counts[i%clients]
		b.Errs.Data[i] = float64(g.IntN(n+1)) / float64(n)
	}
	return b
}()

// BenchmarkBankEncode measures rendering a bank to its bankfmt/v3 bytes —
// the store Put / peer-serve write path.
func BenchmarkBankEncode(b *testing.B) {
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := core.EncodeBank(&buf, codecBenchBank); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buf.Len()), "encoded_bytes")
}

// BenchmarkBankDecode measures loading a bank from its bankfmt/v3 bytes —
// the cache-hit and peer-transfer hot path (header parse + one bulk read
// into the arena).
func BenchmarkBankDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := core.EncodeBank(&buf, codecBenchBank); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecodeBank(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// legacyGobBank mirrors the pre-arena bank layout; the legacy benchmarks
// below keep the old gob+gzip codec measurable so the README's before/after
// table regenerates from the same machine.
type legacyGobBank struct {
	SpecName      string
	Seed          uint64
	Configs       []noisyeval.HParams
	Rounds        []int
	Partitions    []float64
	Errs          [][][][]float64
	ExampleCounts [][]int
	Diverged      []bool
}

func legacyGobBytes(b *testing.B) []byte {
	src := codecBenchBank
	lb := legacyGobBank{
		SpecName: src.SpecName, Seed: src.Seed, Configs: src.Configs,
		Rounds: src.Rounds, Partitions: src.Partitions,
		ExampleCounts: src.ExampleCounts, Diverged: src.Diverged,
	}
	lb.Errs = make([][][][]float64, src.Errs.Parts)
	for pi := range lb.Errs {
		lb.Errs[pi] = make([][][]float64, src.Errs.Configs)
		for ci := range lb.Errs[pi] {
			lb.Errs[pi][ci] = make([][]float64, src.Errs.Checkpoints)
			for ri := range lb.Errs[pi][ci] {
				lb.Errs[pi][ci][ri] = src.Errs.Row(pi, ci, ri)
			}
		}
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(&lb); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkBankDecodeLegacyGob is the pre-refactor decode baseline (gob of
// nested slices inside gzip) over the same bank content, for the README's
// speed/allocation comparison. Not CI-gated.
func BenchmarkBankDecodeLegacyGob(b *testing.B) {
	raw := legacyGobBytes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var lb legacyGobBank
		if err := gob.NewDecoder(zr).Decode(&lb); err != nil {
			b.Fatal(err)
		}
		zr.Close()
	}
}

// BenchmarkOracleTrials measures 100 bootstrap tuning trials against a warm
// bank — the workload every figure, noisyevald run, and ablation resolves
// to. The oracle's arena rows and per-trial scratch make the steady state
// allocation-light.
func BenchmarkOracleTrials(b *testing.B) {
	oracle, err := core.NewBankOracle(codecBenchBank, 0, noisyeval.SchemeWithCount(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	tn := core.Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 8 * 405, MaxPerConfig: 405, K: 8}}.Normalize(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := tn.RunTrials(oracle, 100, rng.New(uint64(i)).Split("bench-trials"))
		if len(results) != 100 {
			b.Fatal("short trial batch")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkOracleTrialsSequential is BenchmarkOracleTrials with the blocked
// scheduler disabled (the -blocked-trials=false escape hatch): the legacy
// goroutine-per-trial path, kept measurable so the README's before/after
// table and the blocked/sequential speedup regenerate from one machine.
// Not CI-gated.
func BenchmarkOracleTrialsSequential(b *testing.B) {
	oracle, err := core.NewBankOracle(codecBenchBank, 0, noisyeval.SchemeWithCount(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	tn := core.Tuner{
		Method:           hpo.RandomSearch{},
		Space:            hpo.DefaultSpace(),
		Settings:         hpo.Settings{Budget: hpo.Budget{TotalRounds: 8 * 405, MaxPerConfig: 405, K: 8}}.Normalize(),
		SequentialTrials: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := tn.RunTrials(oracle, 100, rng.New(uint64(i)).Split("bench-trials"))
		if len(results) != 100 {
			b.Fatal("short trial batch")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkOracleEvaluateMulti measures the row-sweep kernel the block
// scheduler bottoms out in: one arena row evaluated for a 64-cohort wave
// with warm scratch. The benchdiff gate pins allocs/op at 0 — the steady
// state must stay allocation-free no matter how many cohorts share the row.
func BenchmarkOracleEvaluateMulti(b *testing.B) {
	oracle, err := core.NewBankOracle(codecBenchBank, 0, noisyeval.SchemeWithCount(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	const cohorts = 64
	seeds := make([]uint64, cohorts)
	for i := range seeds {
		seeds[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	var ms eval.MultiScratch
	oracle.EvaluateRows(0, 0, seeds, &ms) // warm the scratch before timing
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		rs := oracle.EvaluateRows(i%4, i%5, seeds, &ms)
		sink += rs[0].Observed
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("evaluations produced no signal")
	}
	b.ReportMetric(float64(cohorts*b.N)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkObsOverhead measures the fully instrumented oracle evaluation
// step: one warm BankOracle.Evaluate plus exactly the obs work the trial
// loop adds per evaluation — one histogram Observe and one counter Inc.
// The benchdiff gate pins allocs/op at 0: the first allocation the
// instrumentation introduces fails CI, which is what keeps /metrics
// collection free on the hot path.
func BenchmarkObsOverhead(b *testing.B) {
	oracle, err := core.NewBankOracle(codecBenchBank, 0, noisyeval.SchemeWithCount(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	trial := oracle.WithTrial(0) // scratch-backed: the warm 0-alloc path
	cfg := codecBenchBank.Configs[0]
	reg := obs.NewRegistry()
	hist := reg.Histogram("bench_trial_seconds", "Instrumentation-overhead bench histogram.", nil)
	ctr := reg.Counter("bench_trials_total", "Instrumentation-overhead bench counter.")
	trial.Evaluate(cfg, 405, "warm") // populate the scratch before timing
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sink += trial.Evaluate(cfg, 405, "warm")
		hist.Observe(time.Since(start).Seconds())
		ctr.Inc()
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("evaluations produced no signal")
	}
}

// BenchmarkBankOpenMmap measures opening a bankfmt/v4 segmented bank for
// zero-copy serving (header + segment-directory walk, no payload reads) —
// the mmap-mode cache-hit path. Contrast with BenchmarkBankDecode, which
// pays the full v3 arena decode for the same content; open cost is
// O(segment count), independent of arena size.
func BenchmarkBankOpenMmap(b *testing.B) {
	path := b.TempDir() + "/bench.bank"
	if err := core.SaveBankV4(codecBenchBank, path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank, closer, err := core.OpenBankMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(bank.Configs) != len(codecBenchBank.Configs) {
			b.Fatal("short bank")
		}
		closer.Close()
	}
}

// BenchmarkOracleTrialsMapped is BenchmarkOracleTrials against a
// segment-backed bank served zero-copy from an mmap'd bankfmt/v4 file: the
// oracle reads rows straight out of the page cache. Same workload as the
// heap benchmark so the numbers compare directly; the read path itself adds
// no allocations over heap. The warm open (madvise + page pre-touch, the
// -mmap-warm path) keeps first-touch page faults out of the timed region.
func BenchmarkOracleTrialsMapped(b *testing.B) {
	path := b.TempDir() + "/bench.bank"
	if err := core.SaveBankV4(codecBenchBank, path); err != nil {
		b.Fatal(err)
	}
	bank, closer, err := core.OpenBankMappedWarm(path)
	if err != nil {
		b.Fatal(err)
	}
	defer closer.Close()
	oracle, err := core.NewBankOracle(bank, 0, noisyeval.SchemeWithCount(10), 1)
	if err != nil {
		b.Fatal(err)
	}
	tn := core.Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 8 * 405, MaxPerConfig: 405, K: 8}}.Normalize(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := tn.RunTrials(oracle, 100, rng.New(uint64(i)).Split("bench-trials"))
		if len(results) != 100 {
			b.Fatal("short trial batch")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(100*b.N)/b.Elapsed().Seconds(), "trials/s")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// runRSTrials is the shared ablation harness: bootstrap RS over the
// cifar10-like bank under a noise setting, reporting the median final error
// as a benchmark metric.
func runRSTrials(b *testing.B, s *exper.Suite, noise core.Noise, method hpo.Method, label string) {
	bank := s.Bank("cifar10")
	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Cfg
	tn := core.Tuner{Method: method, Space: hpo.DefaultSpace(), Settings: noise.Settings(cfg.Settings())}
	var med float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finals := core.FinalErrors(tn.RunTrials(oracle, cfg.Trials, rng.New(uint64(i)).Split(label)))
		med = stats.Median(finals)
	}
	b.ReportMetric(med*100, "median_err_%")
}

// BenchmarkAblationWeightedEval compares the paper's weighted aggregation
// against uniform weighting under subsampling (footnote 1 design choice).
func BenchmarkAblationWeightedEval(b *testing.B) {
	s := benchSuite(b)
	b.Run("weighted", func(b *testing.B) {
		runRSTrials(b, s, core.Noise{SampleCount: 2}, hpo.RandomSearch{}, "abl-weighted")
	})
	b.Run("uniform", func(b *testing.B) {
		runRSTrials(b, s, core.Noise{SampleCount: 2, Uniform: true}, hpo.RandomSearch{}, "abl-uniform")
	})
}

// BenchmarkAblationReeval compares plain RS against re-evaluation-averaged
// RS (the §5 "simple trick") under subsampling noise.
func BenchmarkAblationReeval(b *testing.B) {
	s := benchSuite(b)
	b.Run("plain", func(b *testing.B) {
		runRSTrials(b, s, core.Noise{SampleCount: 1}, hpo.RandomSearch{}, "abl-plain")
	})
	b.Run("reeval3", func(b *testing.B) {
		runRSTrials(b, s, core.Noise{SampleCount: 1}, hpo.ResampledRS{Reps: 3}, "abl-reeval")
	})
}

// BenchmarkAblationTPEPool varies TPE's candidate pool size (EI candidates
// scored per iteration).
func BenchmarkAblationTPEPool(b *testing.B) {
	s := benchSuite(b)
	for _, n := range []int{8, 24, 48} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			runRSTrials(b, s, core.Noise{SampleCount: 2}, hpo.TPE{NCandidates: n}, "abl-tpe")
		})
	}
}

// BenchmarkAblationCheckpointDensity compares Hyperband on banks built with
// dense (5-level) vs sparse (2-level) checkpoint grids: sparse grids force
// low-fidelity evaluations onto higher rungs.
func BenchmarkAblationCheckpointDensity(b *testing.B) {
	spec := noisyeval.CIFAR10Like().Scaled(0.08, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop := noisyeval.MustGenerate(spec, noisyeval.NewRNG(3))
	for _, levels := range []int{2, 5} {
		levels := levels
		b.Run(sizeName(levels), func(b *testing.B) {
			opts := noisyeval.DefaultBuildOptions()
			opts.NumConfigs = 8
			opts.MaxRounds = 27
			opts.Levels = levels
			bank, err := noisyeval.BuildBank(pop, opts, 4)
			if err != nil {
				b.Fatal(err)
			}
			oracle, err := core.NewBankOracle(bank, 0, noisyeval.SchemeWithCount(2), 1)
			if err != nil {
				b.Fatal(err)
			}
			tn := core.Tuner{
				Method: hpo.Hyperband{},
				Space:  hpo.DefaultSpace(),
				Settings: hpo.Settings{
					Budget: hpo.Budget{TotalRounds: 8 * 27, MaxPerConfig: 27, K: 8},
				}.Normalize(),
			}
			var med float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				finals := core.FinalErrors(tn.RunTrials(oracle, 8, rng.New(uint64(i)).Split("abl-ckpt")))
				med = stats.Median(finals)
			}
			b.ReportMetric(med*100, "median_err_%")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n < 10:
		return "n" + string(rune('0'+n))
	default:
		return "n" + string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
}
