# Local runs and CI invoke the same targets (.github/workflows/ci.yml).
#
#   make build   compile everything
#   make lint    gofmt + go vet
#   make test    full test suite (bank cache at $(CACHE_DIR))
#   make race    race-detector run over the concurrency-heavy packages
#   make bench   benchmark smoke run -> bench.out + BENCH_smoke.json
#   make figures quick-scale figure regeneration through the bank cache

GO        ?= go
CACHE_DIR ?= $(HOME)/.cache/noisyeval-banks

.PHONY: build lint test race bench figures clean

build:
	$(GO) build ./...

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:" $$fmt; exit 1; fi
	$(GO) vet ./...

test: build
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test ./...

race:
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -race \
		-run 'TestScheduler|TestBankStore|TestBankKey|TestBuildBank|TestSuite' \
		./internal/core ./internal/exper

bench:
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -bench=. -benchtime=1x -run '^$$' . | tee bench.out
	$(GO) run ./tools/bench2json < bench.out > BENCH_smoke.json

figures:
	$(GO) run ./cmd/figures -quick -cache-dir $(CACHE_DIR) -out results

clean:
	rm -f bench.out BENCH_smoke.json
	rm -rf results
