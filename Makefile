# Local runs and CI invoke the same targets (.github/workflows/ci.yml).
#
#   make build       compile everything
#   make lint        gofmt + go vet
#   make test        full test suite (bank cache at $(CACHE_DIR))
#   make race        race-detector run over the concurrency-heavy packages
#   make bench       benchmark smoke run -> bench.out + BENCH_smoke.json
#   make bench-json  gated hot-path benchmarks -> BENCH_latest.json
#   make bench-check bench-json + fail on >25% ns/op regression vs
#                    the committed BENCH_baseline.json (tools/benchdiff)
#   make fuzz        short coverage-guided fuzz pass over the two bank
#                    codecs (bankfmt/v3 frame, bankfmt/v4 segment container)
#   make figures     quick-scale figure regeneration through the bank cache
#   make serve       run the noisyevald tuning daemon on $(SERVE_ADDR)
#   make serve-smoke boot noisyevald, drive runs + an ask/tell session via pkg/client
#                    end to end, shut down gracefully (used by CI)
#   make cluster-smoke boot a coordinator + two noisyworker processes, build
#                    quick banks cold through sharded fleet leases (both
#                    workers must train shards), re-run warm with 0 builds
#   make crash-smoke boot noisyevald with a run journal, load it via
#                    tools/loadgen, kill -9 mid-flight (torn WAL tail
#                    included), restart, assert zero lost runs and results
#                    identical to an uninterrupted reference daemon

GO         ?= go
CACHE_DIR  ?= $(HOME)/.cache/noisyeval-banks
SERVE_ADDR ?= 127.0.0.1:8723

.PHONY: build lint test race bench bench-json bench-check fuzz figures serve serve-smoke cluster-smoke crash-smoke clean

build:
	$(GO) build ./...

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:" $$fmt; exit 1; fi
	$(GO) vet ./...

test: build
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test ./...

race:
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -race \
		-run 'TestScheduler|TestBankStore|TestBankKey|TestBuildBank|TestSuite|TestRunKey|TestRunTune' \
		./internal/core ./internal/exper
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -race \
		-run 'TestAskTell|TestSession' ./internal/hpo ./internal/serve
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -race ./internal/serve ./internal/dist ./internal/obs

bench:
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -bench=. -benchtime=1x -run '^$$' . | tee bench.out
	$(GO) run ./tools/bench2json < bench.out > BENCH_smoke.json

# The gated benchmarks run at a real -benchtime (unlike the 1x smoke pass)
# so their ns/op is stable enough to diff against the committed baseline.
bench-json:
	NOISYEVAL_CACHE_DIR=$(CACHE_DIR) $(GO) test -bench 'BenchmarkFederatedRound$$|BenchmarkBankBuild$$|BenchmarkBankEncode$$|BenchmarkBankDecode$$|BenchmarkBankOpenMmap$$|BenchmarkOracleTrials$$|BenchmarkOracleTrialsMapped$$|BenchmarkOracleEvaluateMulti$$|BenchmarkObsOverhead$$' -benchmem -benchtime 2s -run '^$$' . | tee bench-gated.out
	$(GO) run ./tools/bench2json < bench-gated.out > BENCH_latest.json

# ns/op and B/op gate at 25% over the committed baseline (refreshed when a
# perf PR lands); allocs/op may grow at most 25% — and a baseline pinned at
# 0 allocs/op (the batched training round, the blocked-oracle row sweep)
# fails on the FIRST allocation, machine-independently. trials/s (the
# blocked oracle's throughput metric) may drop at most 25%. See
# tools/benchdiff.
bench-check: bench-json
	$(GO) run ./tools/benchdiff -baseline BENCH_baseline.json -latest BENCH_latest.json \
		-bench BenchmarkFederatedRound,BenchmarkBankBuild,BenchmarkBankEncode,BenchmarkBankDecode,BenchmarkBankOpenMmap,BenchmarkOracleTrials,BenchmarkOracleTrialsMapped,BenchmarkOracleEvaluateMulti,BenchmarkObsOverhead \
		-max-regress 0.25 -max-allocs-frac 1.25 -metrics trials/s -max-metric-drop 0.25

# Coverage-guided fuzzing of the two bank codecs, 15s each: the v3
# monolithic frame (FuzzBankDecode) and the v4 segment container
# (FuzzBankV4, seeded with torn-segment / CRC-flip / duplicate-segment
# corpora). A crash writes its input to testdata/fuzz for triage.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzBankDecode$$' -fuzztime 15s ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzBankV4$$' -fuzztime 15s ./internal/core

figures:
	$(GO) run ./cmd/figures -quick -cache-dir $(CACHE_DIR) -out results

serve:
	$(GO) run ./cmd/noisyevald -addr $(SERVE_ADDR) -cache-dir $(CACHE_DIR)

# End-to-end daemon smoke: boot noisyevald, then drive it with the
# tools/servesmoke exerciser over pkg/client — one quick run streamed to
# completion with a dedup hit, the /v1/methods catalogue, and an ask/tell
# session whose best must match the server-driven run exactly — then drain
# on SIGTERM. Identical locally and in CI's serve job.
serve-smoke: build
	./tools/serve_smoke.sh $(SERVE_ADDR) $(CACHE_DIR)

# Cluster end to end: coordinator + 2 workers build quick banks cold via
# sharded leases (expvar-asserted on both workers), then a warm rerun must
# train nothing. Uses its own cache dir so "cold" is guaranteed.
cluster-smoke: build
	./tools/cluster_smoke.sh

# Fault-injected durability end to end: journal boot, concurrent load,
# kill -9 + torn WAL tail, recovery boot asserted via expvar
# (journal_replayed / journal_torn_tail / runs_recovered) and loadgen verify
# against an uninterrupted reference daemon.
crash-smoke: build
	./tools/crash_smoke.sh

clean:
	rm -f bench.out bench-gated.out BENCH_smoke.json BENCH_latest.json
	rm -rf results
